//! Immutable sorted segments and their compressed on-disk format.
//!
//! A segment is a batch of events sorted by `(timestamp, sequence)`, frozen
//! when the memtable seals.  The encoding is built for monitoring streams:
//!
//! * **delta-of-delta timestamps** — sensors emit at near-regular periods,
//!   so the second difference of consecutive timestamps is usually 0 or
//!   tiny, and a zigzag varint makes it one byte;
//! * **varint values** — counters and sizes are unsigned varints, signed
//!   readings are zigzag varints, only genuine floats pay eight bytes;
//! * **a per-segment string dictionary** — hosts, programs, event types,
//!   field keys and repeated string values are stored once and referenced
//!   by varint index.
//!
//! Each segment carries a [`SegmentCatalog`] (min/max timestamp, host and
//! event-type sets, per-series counts) that the store consults to *prune*
//! segments from a range scan without touching their data, and decoding is
//! cursor-based so a scan streams events out of the compressed buffer one
//! at a time instead of materializing the segment.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

use jamm_core::intern::Sym;
use jamm_core::query::Facts;
use jamm_ulm::{binary, Event, Timestamp, Value};

use crate::codec::{
    fnv64, get_bytes, get_ivarint, get_str, get_uvarint, put_ivarint, put_str, put_uvarint,
};
use crate::{Result, TsdbError};

/// Magic bytes opening a segment file.  `JSG2` added the catalog's
/// maximum severity rank (level-floor pruning); `JSG1` files predate it
/// and are still readable ([`Segment::from_bytes`] treats them as
/// containing every level, so they are never level-pruned).
pub const SEGMENT_MAGIC: &[u8; 4] = b"JSG2";

/// Previous-generation magic: identical layout minus the catalog's
/// `max_level` byte.
pub const SEGMENT_MAGIC_V1: &[u8; 4] = b"JSG1";

/// File extension of segment files inside a store directory.
pub const SEGMENT_EXT: &str = "jseg";

const TAG_UINT: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;

/// What a segment contains, without reading its data: the pruning index
/// for range scans and the unit of the archiver's per-segment directory
/// publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentCatalog {
    /// Segment identifier (unique within a store, monotonically assigned).
    pub id: u64,
    /// Number of events in the segment.
    pub event_count: usize,
    /// Smallest event timestamp.
    pub min_ts: Timestamp,
    /// Largest event timestamp.
    pub max_ts: Timestamp,
    /// Hosts present, with per-host event counts.
    pub hosts: BTreeMap<String, usize>,
    /// Event types present, with per-type event counts.
    pub event_types: BTreeMap<String, usize>,
    /// Per-series `(host, event type)` event counts.
    pub series: BTreeMap<(String, String), usize>,
    /// Highest severity rank present (see `jamm_ulm::Level::severity`),
    /// so a `level>=` query can skip segments of routine readings.
    pub max_level: u8,
}

impl SegmentCatalog {
    /// True when a query's pushdown [`Facts`] could be satisfied by events
    /// in this segment; the store skips (prunes) segments for which this
    /// is false without decoding any data.  The tiers, cheapest first:
    ///
    /// 1. **time** — the segment's `[min_ts, max_ts]` window misses the
    ///    query's half-open range;
    /// 2. **level** — the query's severity floor exceeds every event's;
    /// 3. **host / type sets** — none of the required hosts (or event
    ///    types) occurs in the segment;
    /// 4. **per-series counts** — hosts *and* types are both constrained
    ///    but no required `(host, type)` series exists here (a segment can
    ///    contain `h1` and `CPU_TOTAL` without containing `h1`'s
    ///    `CPU_TOTAL` readings).
    pub fn overlaps(&self, facts: &Facts) -> bool {
        if let Some(from) = facts.from_micros {
            if self.max_ts.as_micros() < from {
                return false;
            }
        }
        if let Some(to) = facts.to_micros {
            if self.min_ts.as_micros() >= to {
                return false;
            }
        }
        if let Some(floor) = facts.level_floor {
            if self.max_level < floor {
                return false;
            }
        }
        if let Some(hosts) = &facts.hosts {
            if !hosts.iter().any(|h| self.hosts.contains_key(h.as_str())) {
                return false;
            }
        }
        if let Some(types) = &facts.types {
            if !types
                .iter()
                .any(|t| self.event_types.contains_key(t.as_str()))
            {
                return false;
            }
        }
        if let (Some(hosts), Some(types)) = (&facts.hosts, &facts.types) {
            let series_hit = self.series.keys().any(|(h, t)| {
                hosts.iter().any(|hs| hs.as_str() == h) && types.iter().any(|ts| ts.as_str() == t)
            });
            if !series_hit {
                return false;
            }
        }
        true
    }
}

/// An immutable sorted run of compressed events.
#[derive(Debug)]
pub struct Segment {
    catalog: SegmentCatalog,
    /// Smallest sequence number in the segment.  Together with `max_seq`
    /// this identifies the segment's generation: live segments have
    /// pairwise-disjoint sequence ranges, so an overlap found at open
    /// marks a crash leftover to reconcile.
    min_seq: u64,
    /// Largest sequence number in the segment (restart continues after it).
    max_seq: u64,
    /// String dictionary referenced by the data stream.
    dict: Vec<String>,
    /// The compressed event stream.
    data: Vec<u8>,
}

impl Segment {
    /// Freeze a batch of `(sequence, event)` pairs, **already sorted** by
    /// `(timestamp, sequence)`, into a segment.  Panics on an empty batch —
    /// the store never seals an empty memtable.
    ///
    /// Generic over `Borrow<Event>`: the seal path hands the memtable's
    /// shared (`Arc<Event>`) batch in without copying any event, while
    /// compaction and retention rewrites pass owned decoded events.
    pub fn build<B: std::borrow::Borrow<Event>>(id: u64, sorted: &[(u64, B)]) -> Segment {
        assert!(!sorted.is_empty(), "segments are never empty");
        // The string dictionary, built in one pass over the batch.  The
        // *identifier* strings (hosts, programs, event types, field keys)
        // repeat thousands of times and come from a bounded set, so their
        // index is keyed by interned `Sym` — each repeat lookup hashes a
        // u32 instead of a string.  String *values* are unbounded payload
        // data and must never reach the leaking interner (see
        // `jamm_core::intern`); they go through a borrowed-str index local
        // to this build.
        let mut dict: Vec<String> = Vec::new();
        let mut sym_index: HashMap<Sym, u64> = HashMap::new();
        let collect = |s: &str, dict: &mut Vec<String>, index: &mut HashMap<Sym, u64>| -> u64 {
            let sym = Sym::intern(s);
            *index.entry(sym).or_insert_with(|| {
                dict.push(s.to_string());
                dict.len() as u64 - 1
            })
        };
        let mut value_index: HashMap<&str, u64> = HashMap::new();
        let mut data = Vec::new();
        let mut prev_ts = 0u64;
        let mut prev_delta = 0u64;
        let mut prev_seq = 0u64;
        let mut min_seq = u64::MAX;
        let mut max_seq = 0u64;
        let mut hosts: BTreeMap<String, usize> = BTreeMap::new();
        let mut event_types: BTreeMap<String, usize> = BTreeMap::new();
        let mut series: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut max_level = 0u8;
        for (i, (seq, e)) in sorted.iter().enumerate() {
            let e = e.borrow();
            let ts = e.timestamp.as_micros();
            match i {
                0 => put_uvarint(&mut data, ts),
                1 => {
                    let delta = ts.wrapping_sub(prev_ts);
                    put_uvarint(&mut data, delta);
                    prev_delta = delta;
                }
                _ => {
                    let delta = ts.wrapping_sub(prev_ts);
                    put_ivarint(&mut data, delta.wrapping_sub(prev_delta) as i64);
                    prev_delta = delta;
                }
            }
            prev_ts = ts;
            put_ivarint(&mut data, seq.wrapping_sub(prev_seq) as i64);
            prev_seq = *seq;
            min_seq = min_seq.min(*seq);
            max_seq = max_seq.max(*seq);
            data.push(binary::level_code(e.level));
            let host_ix = collect(&e.host, &mut dict, &mut sym_index);
            put_uvarint(&mut data, host_ix);
            let prog_ix = collect(&e.program, &mut dict, &mut sym_index);
            put_uvarint(&mut data, prog_ix);
            let ty_ix = collect(&e.event_type, &mut dict, &mut sym_index);
            put_uvarint(&mut data, ty_ix);
            put_uvarint(&mut data, e.fields.len() as u64);
            for (k, v) in &e.fields {
                let key_ix = collect(k, &mut dict, &mut sym_index);
                put_uvarint(&mut data, key_ix);
                match v {
                    Value::UInt(u) => {
                        data.push(TAG_UINT);
                        put_uvarint(&mut data, *u);
                    }
                    Value::Int(s) => {
                        data.push(TAG_INT);
                        put_ivarint(&mut data, *s);
                    }
                    Value::Float(f) => {
                        data.push(TAG_FLOAT);
                        data.extend_from_slice(&f.to_le_bytes());
                    }
                    Value::Bool(b) => {
                        data.push(TAG_BOOL);
                        data.push(*b as u8);
                    }
                    Value::Str(s) => {
                        data.push(TAG_STR);
                        // Reuse an identifier's slot when the value is the
                        // same string (e.g. a PEER=host field) — `lookup`
                        // never inserts, so payload values still cannot
                        // reach the leaking interner.
                        let identifier_slot =
                            Sym::lookup(s).and_then(|sym| sym_index.get(&sym).copied());
                        let str_ix = identifier_slot.unwrap_or_else(|| {
                            *value_index.entry(s.as_str()).or_insert_with(|| {
                                dict.push(s.clone());
                                dict.len() as u64 - 1
                            })
                        });
                        put_uvarint(&mut data, str_ix);
                    }
                }
            }
            *hosts.entry(e.host.clone()).or_insert(0) += 1;
            *event_types.entry(e.event_type.clone()).or_insert(0) += 1;
            *series
                .entry((e.host.clone(), e.event_type.clone()))
                .or_insert(0) += 1;
            max_level = max_level.max(e.level.severity());
        }

        Segment {
            catalog: SegmentCatalog {
                id,
                event_count: sorted.len(),
                min_ts: sorted.first().expect("non-empty").1.borrow().timestamp,
                max_ts: sorted.last().expect("non-empty").1.borrow().timestamp,
                hosts,
                event_types,
                series,
                max_level,
            },
            min_seq,
            max_seq,
            dict,
            data,
        }
    }

    /// The segment's pruning catalog.
    pub fn catalog(&self) -> &SegmentCatalog {
        &self.catalog
    }

    /// Segment identifier.
    pub fn id(&self) -> u64 {
        self.catalog.id
    }

    /// Number of events in the segment.
    pub fn len(&self) -> usize {
        self.catalog.event_count
    }

    /// Segments are never empty, so this is always false; present for API
    /// symmetry.
    pub fn is_empty(&self) -> bool {
        self.catalog.event_count == 0
    }

    /// Smallest sequence number stored in the segment.
    pub fn min_seq(&self) -> u64 {
        self.min_seq
    }

    /// Largest sequence number stored in the segment.
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }

    /// Size in bytes of the compressed event stream (excluding dictionary
    /// and catalog).
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Serialize the segment to its file form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.data.len() + 256);
        put_uvarint(&mut body, self.catalog.id);
        put_uvarint(&mut body, self.min_seq);
        put_uvarint(&mut body, self.max_seq);
        put_uvarint(&mut body, self.catalog.event_count as u64);
        put_uvarint(&mut body, self.catalog.min_ts.as_micros());
        put_uvarint(&mut body, self.catalog.max_ts.as_micros());
        body.push(self.catalog.max_level);
        put_uvarint(&mut body, self.catalog.hosts.len() as u64);
        for (h, n) in &self.catalog.hosts {
            put_str(&mut body, h);
            put_uvarint(&mut body, *n as u64);
        }
        put_uvarint(&mut body, self.catalog.event_types.len() as u64);
        for (t, n) in &self.catalog.event_types {
            put_str(&mut body, t);
            put_uvarint(&mut body, *n as u64);
        }
        put_uvarint(&mut body, self.catalog.series.len() as u64);
        for ((h, t), n) in &self.catalog.series {
            put_str(&mut body, h);
            put_str(&mut body, t);
            put_uvarint(&mut body, *n as u64);
        }
        put_uvarint(&mut body, self.dict.len() as u64);
        for s in &self.dict {
            put_str(&mut body, s);
        }
        put_uvarint(&mut body, self.data.len() as u64);
        body.extend_from_slice(&self.data);

        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(SEGMENT_MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv64(&body).to_le_bytes());
        out
    }

    /// Deserialize a segment from its file form, verifying magic and
    /// checksum.  `JSG1` files (written before the catalog carried a
    /// maximum severity rank) load with `max_level = u8::MAX`, so an old
    /// store stays readable and is simply never level-pruned.
    pub fn from_bytes(bytes: &[u8]) -> Result<Segment> {
        if bytes.len() < 12 {
            return Err(TsdbError::Corrupt("bad segment magic"));
        }
        let v1 = &bytes[..4] == SEGMENT_MAGIC_V1;
        if !v1 && &bytes[..4] != SEGMENT_MAGIC {
            return Err(TsdbError::Corrupt("bad segment magic"));
        }
        let body = &bytes[4..bytes.len() - 8];
        let stored = u64::from_le_bytes(
            bytes[bytes.len() - 8..]
                .try_into()
                .expect("8 checksum bytes"),
        );
        if fnv64(body) != stored {
            return Err(TsdbError::Corrupt("segment checksum mismatch"));
        }
        let mut pos = 0usize;
        let id = get_uvarint(body, &mut pos)?;
        let min_seq = get_uvarint(body, &mut pos)?;
        let max_seq = get_uvarint(body, &mut pos)?;
        let event_count = get_uvarint(body, &mut pos)? as usize;
        let min_ts = Timestamp::from_micros(get_uvarint(body, &mut pos)?);
        let max_ts = Timestamp::from_micros(get_uvarint(body, &mut pos)?);
        let max_level = if v1 {
            // Unknown in the old format: assume every level is present so
            // level-floor pruning never skips a legacy segment.
            u8::MAX
        } else {
            let lvl = *body
                .get(pos)
                .ok_or(TsdbError::Corrupt("truncated max level"))?;
            pos += 1;
            lvl
        };
        let mut hosts = BTreeMap::new();
        for _ in 0..get_uvarint(body, &mut pos)? {
            let h = get_str(body, &mut pos)?;
            hosts.insert(h, get_uvarint(body, &mut pos)? as usize);
        }
        let mut event_types = BTreeMap::new();
        for _ in 0..get_uvarint(body, &mut pos)? {
            let t = get_str(body, &mut pos)?;
            event_types.insert(t, get_uvarint(body, &mut pos)? as usize);
        }
        let mut series = BTreeMap::new();
        for _ in 0..get_uvarint(body, &mut pos)? {
            let h = get_str(body, &mut pos)?;
            let t = get_str(body, &mut pos)?;
            series.insert((h, t), get_uvarint(body, &mut pos)? as usize);
        }
        let dict_len = get_uvarint(body, &mut pos)? as usize;
        let mut dict = Vec::with_capacity(dict_len.min(1 << 16));
        for _ in 0..dict_len {
            dict.push(get_str(body, &mut pos)?);
        }
        let data_len = get_uvarint(body, &mut pos)? as usize;
        if body.len() - pos != data_len {
            return Err(TsdbError::Corrupt("segment data length mismatch"));
        }
        Ok(Segment {
            catalog: SegmentCatalog {
                id,
                event_count,
                min_ts,
                max_ts,
                hosts,
                event_types,
                series,
                max_level,
            },
            min_seq,
            max_seq,
            dict,
            data: body[pos..].to_vec(),
        })
    }

    /// Write the segment to `dir` as `seg-<id>.jseg`, atomically (write to
    /// a temp name, fsync, rename) so a crash never leaves a half-written
    /// segment with a valid name.
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf> {
        let path = dir.join(Segment::file_name(self.catalog.id));
        let tmp = dir.join(format!("seg-{:08}.tmp", self.catalog.id));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp).map_err(TsdbError::from)?;
            f.write_all(&self.to_bytes()).map_err(TsdbError::from)?;
            f.sync_all().map_err(TsdbError::from)?;
        }
        std::fs::rename(&tmp, &path).map_err(TsdbError::from)?;
        Ok(path)
    }

    /// Load a segment file.
    pub fn read_from_file(path: &Path) -> Result<Segment> {
        let bytes = std::fs::read(path).map_err(TsdbError::from)?;
        Segment::from_bytes(&bytes)
    }

    /// Canonical file name of a segment id.
    pub fn file_name(id: u64) -> String {
        format!("seg-{id:08}.{SEGMENT_EXT}")
    }

    /// A cursor decoding the segment's events one at a time.
    pub fn cursor(self: &std::sync::Arc<Self>) -> SegmentCursor {
        SegmentCursor {
            seg: std::sync::Arc::clone(self),
            state: CursorState::default(),
        }
    }
}

/// Streaming decoder over one segment's compressed data.  Yields events in
/// `(timestamp, sequence)` order without materializing the segment.
#[derive(Debug)]
pub struct SegmentCursor {
    seg: std::sync::Arc<Segment>,
    state: CursorState,
}

/// Mutable decode position and delta-decoding state, split from the
/// segment handle so the hot decode loop borrows the two disjointly (no
/// per-event `Arc` clone).
#[derive(Debug, Default)]
struct CursorState {
    pos: usize,
    decoded: usize,
    prev_ts: u64,
    prev_delta: u64,
    prev_seq: u64,
}

impl SegmentCursor {
    /// Decode the next event; `None` at the end of the segment.  Corrupt
    /// in-memory data is unreachable (segments are checksummed at load),
    /// so decode errors surface as `Some(Err)` only for defensive depth.
    pub fn next_event(&mut self) -> Option<Result<(u64, Event)>> {
        if self.state.decoded >= self.seg.len() {
            return None;
        }
        Some(decode_event(&self.seg, &mut self.state))
    }
}

/// Decode one event from the segment's compressed stream, advancing the
/// cursor state only on success.
fn decode_event(seg: &Segment, st: &mut CursorState) -> Result<(u64, Event)> {
    let data: &[u8] = &seg.data;
    let mut pos = st.pos;
    let ts = match st.decoded {
        0 => get_uvarint(data, &mut pos)?,
        1 => {
            let delta = get_uvarint(data, &mut pos)?;
            st.prev_delta = delta;
            st.prev_ts.wrapping_add(delta)
        }
        _ => {
            let dod = get_ivarint(data, &mut pos)?;
            let delta = st.prev_delta.wrapping_add(dod as u64);
            st.prev_delta = delta;
            st.prev_ts.wrapping_add(delta)
        }
    };
    st.prev_ts = ts;
    let dseq = get_ivarint(data, &mut pos)?;
    let seq = st.prev_seq.wrapping_add(dseq as u64);
    st.prev_seq = seq;
    let level = *data.get(pos).ok_or(TsdbError::Corrupt("truncated level"))?;
    pos += 1;
    let level = binary::level_from_code(level).map_err(|_| TsdbError::Corrupt("bad level code"))?;
    let host = dict_str(seg, data, &mut pos)?;
    let program = dict_str(seg, data, &mut pos)?;
    let event_type = dict_str(seg, data, &mut pos)?;
    let n_fields = get_uvarint(data, &mut pos)? as usize;
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let key = dict_str(seg, data, &mut pos)?;
        let tag = *data.get(pos).ok_or(TsdbError::Corrupt("truncated tag"))?;
        pos += 1;
        let value = match tag {
            TAG_UINT => Value::UInt(get_uvarint(data, &mut pos)?),
            TAG_INT => Value::Int(get_ivarint(data, &mut pos)?),
            TAG_FLOAT => Value::Float(f64::from_le_bytes(get_bytes::<8>(data, &mut pos)?)),
            TAG_BOOL => {
                let b = *data.get(pos).ok_or(TsdbError::Corrupt("truncated bool"))?;
                pos += 1;
                Value::Bool(b != 0)
            }
            TAG_STR => Value::Str(dict_str(seg, data, &mut pos)?),
            _ => return Err(TsdbError::Corrupt("unknown value tag")),
        };
        fields.push((key, value));
    }
    st.pos = pos;
    st.decoded += 1;
    Ok((
        seq,
        Event {
            timestamp: Timestamp::from_micros(ts),
            host,
            program,
            level,
            event_type,
            fields,
        },
    ))
}

/// Resolve a dictionary reference from the data stream.
fn dict_str(seg: &Segment, data: &[u8], pos: &mut usize) -> Result<String> {
    let idx = get_uvarint(data, pos)? as usize;
    seg.dict
        .get(idx)
        .cloned()
        .ok_or(TsdbError::Corrupt("dictionary index out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::Level;
    use std::sync::Arc;

    fn ev(host: &str, ty: &str, t_micros: u64, v: f64) -> Event {
        Event::builder("vmstat", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_micros(t_micros))
            .value(v)
            .field("COUNT", 42u64)
            .field("DELTA", -7i64)
            .field("UP", true)
            .field("PEER", "mems.cairn.net")
            .build()
    }

    fn sorted_batch(n: u64) -> Vec<(u64, Event)> {
        (0..n)
            .map(|i| {
                (
                    i + 1,
                    ev(
                        if i % 3 == 0 { "h1" } else { "h2" },
                        if i % 2 == 0 { "CPU_TOTAL" } else { "MEM_FREE" },
                        1_000_000 + i * 250_000, // regular 250ms period
                        i as f64,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn build_and_cursor_round_trip() {
        let batch = sorted_batch(200);
        let seg = Arc::new(Segment::build(9, &batch));
        assert_eq!(seg.len(), 200);
        assert_eq!(seg.min_seq(), 1);
        assert_eq!(seg.max_seq(), 200);
        let mut cur = seg.cursor();
        for (seq, e) in &batch {
            let (got_seq, got) = cur.next_event().unwrap().unwrap();
            assert_eq!(got_seq, *seq);
            assert_eq!(&got, e);
        }
        assert!(cur.next_event().is_none());
    }

    #[test]
    fn catalog_counts_and_bounds() {
        let batch = sorted_batch(30);
        let seg = Segment::build(1, &batch);
        let c = seg.catalog();
        assert_eq!(c.event_count, 30);
        assert_eq!(c.min_ts, Timestamp::from_micros(1_000_000));
        assert_eq!(c.max_ts, Timestamp::from_micros(1_000_000 + 29 * 250_000));
        assert_eq!(c.hosts.len(), 2);
        assert_eq!(c.event_types.len(), 2);
        assert_eq!(c.hosts.values().sum::<usize>(), 30);
        assert_eq!(c.series.values().sum::<usize>(), 30);
    }

    #[test]
    fn overlaps_prunes_time_host_and_type() {
        let seg = Segment::build(1, &sorted_batch(10));
        let c = seg.catalog().clone();
        let facts = |q: &crate::query::TsdbQuery| q.to_plan().facts().clone();
        use crate::query::TsdbQuery;
        assert!(c.overlaps(&facts(&TsdbQuery::default())));
        assert!(!c.overlaps(&facts(
            &TsdbQuery::default().between(Timestamp::from_secs(100), Timestamp::from_secs(200))
        )));
        assert!(!c.overlaps(&facts(
            &TsdbQuery::default().between(Timestamp::EPOCH, Timestamp::from_micros(1_000_000))
        )));
        assert!(!c.overlaps(&facts(&TsdbQuery::default().host("nowhere"))));
        assert!(c.overlaps(&facts(&TsdbQuery::default().host("h1"))));
        assert!(!c.overlaps(&facts(&TsdbQuery::default().event_type("DISK_IO"))));
    }

    #[test]
    fn overlaps_prunes_by_level_floor_and_series_counts() {
        use jamm_core::query::Predicate;
        let seg = Segment::build(1, &sorted_batch(10)); // all Usage events
        let c = seg.catalog().clone();
        assert_eq!(c.max_level, Level::Usage.severity());
        let warnings = Predicate::parse("(level>=warning)").unwrap().compile();
        assert!(!c.overlaps(warnings.facts()), "no warnings stored here");
        let usage = Predicate::parse("(level>=usage)").unwrap().compile();
        assert!(c.overlaps(usage.facts()));

        // h1 only ever emits CPU_TOTAL (i % 3 == 0 implies i % 2 == 0 is
        // not guaranteed — check the batch invariant first).
        assert!(c
            .series
            .contains_key(&("h1".to_string(), "CPU_TOTAL".to_string())));
        // The segment has host h2 and type CPU_TOTAL, but if a particular
        // (host, type) pairing is absent the series tier prunes it.
        let absent = c
            .hosts
            .keys()
            .flat_map(|h| c.event_types.keys().map(move |t| (h.clone(), t.clone())))
            .find(|pair| !c.series.contains_key(pair));
        if let Some((h, t)) = absent {
            let q = Predicate::parse(&format!("(&(host={h})(type={t}))"))
                .unwrap()
                .compile();
            assert!(!c.overlaps(q.facts()), "series tier must prune ({h}, {t})");
        }
        // A mixed-level batch records the max.
        let mut batch = sorted_batch(4);
        batch[2].1.level = Level::Error;
        let seg = Segment::build(2, &batch);
        assert_eq!(seg.catalog().max_level, Level::Error.severity());
        assert!(seg.catalog().overlaps(warnings.facts()));
    }

    #[test]
    fn file_round_trip_and_checksum() {
        let seg = Segment::build(3, &sorted_batch(50));
        let bytes = seg.to_bytes();
        let back = Segment::from_bytes(&bytes).unwrap();
        assert_eq!(back.catalog(), seg.catalog());
        assert_eq!(back.min_seq(), seg.min_seq());
        assert_eq!(back.max_seq(), seg.max_seq());
        let mut a = Arc::new(seg).cursor();
        let mut b = Arc::new(back).cursor();
        while let Some(x) = a.next_event() {
            assert_eq!(x.unwrap(), b.next_event().unwrap().unwrap());
        }

        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        assert!(matches!(
            Segment::from_bytes(&corrupted),
            Err(TsdbError::Corrupt(_))
        ));
        assert!(Segment::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn legacy_jsg1_segments_still_load_and_are_never_level_pruned() {
        use jamm_core::query::Predicate;
        let seg = Segment::build(7, &sorted_batch(25)); // all Usage level
        let bytes = seg.to_bytes();
        // Re-encode as the previous generation: JSG1 magic, no max_level
        // byte (it sits right after the sixth leading varint), fresh
        // checksum.
        let body = &bytes[4..bytes.len() - 8];
        let mut pos = 0usize;
        for _ in 0..6 {
            get_uvarint(body, &mut pos).unwrap(); // id..max_ts
        }
        let mut v1_body = body[..pos].to_vec();
        v1_body.extend_from_slice(&body[pos + 1..]); // skip max_level
        let mut v1 = Vec::with_capacity(v1_body.len() + 12);
        v1.extend_from_slice(SEGMENT_MAGIC_V1);
        v1.extend_from_slice(&v1_body);
        v1.extend_from_slice(&fnv64(&v1_body).to_le_bytes());

        let back = Segment::from_bytes(&v1).expect("JSG1 stays readable");
        assert_eq!(back.len(), seg.len());
        assert_eq!(back.catalog().hosts, seg.catalog().hosts);
        assert_eq!(back.catalog().max_level, u8::MAX, "unknown = all levels");
        // Unknown level data must never be pruned by a severity floor...
        let errors = Predicate::parse("(level>=error)").unwrap().compile();
        assert!(back.catalog().overlaps(errors.facts()));
        // ...and the events themselves still decode identically.
        let mut a = Arc::new(seg).cursor();
        let mut b = Arc::new(back).cursor();
        while let Some(x) = a.next_event() {
            assert_eq!(x.unwrap(), b.next_event().unwrap().unwrap());
        }
    }

    #[test]
    fn compression_beats_binary_frames_on_regular_streams() {
        let batch = sorted_batch(1_000);
        let seg = Segment::build(1, &batch);
        let frames: usize = batch.iter().map(|(_, e)| binary::encode(e).len()).sum();
        let compressed = seg.to_bytes().len();
        assert!(
            compressed * 3 < frames,
            "expected >3x compression, got {frames} -> {compressed}"
        );
    }

    #[test]
    fn irregular_timestamps_still_round_trip() {
        // Jittery, repeated and out-of-pattern timestamps (still sorted).
        let ts = [
            0u64,
            0,
            1,
            1_000_000,
            1_000_001,
            1_000_001,
            u32::MAX as u64 * 3,
        ];
        let batch: Vec<(u64, Event)> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| (i as u64 + 10, ev("h", "X", t, 0.0)))
            .collect();
        let seg = Arc::new(Segment::build(1, &batch));
        let mut cur = seg.cursor();
        for (seq, e) in &batch {
            let (got_seq, got) = cur.next_event().unwrap().unwrap();
            assert_eq!((got_seq, got.timestamp), (*seq, e.timestamp));
        }
    }

    #[test]
    fn write_and_read_dir() {
        let dir = crate::test_util::TempDir::new("segment-io");
        let seg = Segment::build(12, &sorted_batch(20));
        let path = seg.write_to_dir(dir.path()).unwrap();
        assert!(path.ends_with("seg-00000012.jseg"));
        let back = Segment::read_from_file(&path).unwrap();
        assert_eq!(back.catalog(), seg.catalog());
    }
}
