//! # jamm-tsdb — the segmented, compressed time-series engine behind the
//! event archive
//!
//! The paper's archive service exists "to provide the ability to do
//! historical analysis of system performance" (§2.2).  This crate is the
//! storage engine that makes that possible at production scale, organized
//! as tiers of data by age:
//!
//! * **WAL** ([`wal`]) — every append hits an append-only log first, so a
//!   crash loses nothing; reopen replays it (tolerating a torn tail).
//! * **Memtable** ([`memtable`]) — the hot tier: a sorted in-memory buffer
//!   absorbing writes.
//! * **Segments** ([`segment`]) — a full memtable *seals* into an immutable
//!   sorted segment compressed with delta-of-delta timestamps, varint
//!   values and a per-segment string dictionary.  Each segment carries a
//!   catalog (time bounds, host / event-type sets, per-series counts).
//! * **Maintenance** — [`Tsdb::compact`] merges runs of small segments,
//!   [`Tsdb::retain`] drops the expired tier.
//!
//! Range scans ([`Tsdb::scan`]) use the catalogs to *prune* whole segments
//! without reading their data — observable through [`TsdbStats`] — and the
//! surviving segments decode lazily through a k-way merge iterator, so a
//! query streams results without materializing the match set.
//!
//! ```
//! use jamm_tsdb::{Tsdb, TsdbQuery};
//! use jamm_ulm::{Event, Level, Timestamp};
//!
//! let db = Tsdb::in_memory();
//! for t in 0..100u64 {
//!     db.append(
//!         Event::builder("vmstat", "dpss1.lbl.gov")
//!             .level(Level::Usage)
//!             .event_type("CPU_TOTAL")
//!             .timestamp(Timestamp::from_secs(t))
//!             .value(t as f64)
//!             .build(),
//!     )
//!     .unwrap();
//! }
//! db.seal().unwrap();
//! let q = TsdbQuery::all().between(Timestamp::from_secs(10), Timestamp::from_secs(20));
//! assert_eq!(db.scan(&q).count(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod memtable;
pub mod query;
pub mod segment;
pub mod store;
pub mod test_util;
pub mod wal;

pub use query::{ScanIter, TsdbQuery};
pub use segment::{Segment, SegmentCatalog};
pub use store::{StoreCatalog, Tsdb, TsdbOptions, TsdbStats};

/// Errors a store can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsdbError {
    /// An underlying filesystem operation failed (message carries the OS
    /// error text).
    Io(String),
    /// Stored bytes failed validation (bad magic, checksum mismatch,
    /// truncated structure).
    Corrupt(&'static str),
}

impl std::fmt::Display for TsdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsdbError::Io(e) => write!(f, "tsdb I/O error: {e}"),
            TsdbError::Corrupt(what) => write!(f, "tsdb corrupt data: {what}"),
        }
    }
}

impl std::error::Error for TsdbError {}

impl From<std::io::Error> for TsdbError {
    fn from(e: std::io::Error) -> Self {
        TsdbError::Io(e.to_string())
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, TsdbError>;
