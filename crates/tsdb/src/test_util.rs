//! Scratch-directory helper used by this crate's tests and by downstream
//! crates' archive/recovery tests and benches.  Not part of the storage
//! engine proper.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed
/// (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `jamm-tsdb-<label>-<pid>-<n>` under [`std::env::temp_dir`].
    pub fn new(label: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("jamm-tsdb-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
