//! [`Tsdb`]: the storage engine tying WAL, memtable and segments together.
//!
//! Data is organized in tiers by age, the shape the paper's archive needs
//! for "historical analysis of system performance" at scale: appends land
//! in the WAL (durability) and the memtable (the hot tier); a full
//! memtable **seals** into an immutable compressed segment (the warm
//! tier); `compact()` merges runs of small segments; `retain()` drops the
//! expired tier entirely.  Range scans prune whole segments via their
//! catalogs before touching any data, and the [`TsdbStats`] counters make
//! that pruning observable (and testable).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jamm_core::sync::RwLock;
use jamm_ulm::{Event, SharedEvent, Timestamp};

use crate::memtable::MemTable;
use crate::query::{ScanIter, TsdbQuery};
use crate::segment::{Segment, SegmentCatalog, SEGMENT_EXT};
use crate::wal::Wal;
use crate::Result;

/// Tuning knobs for a [`Tsdb`].
#[derive(Debug, Clone)]
pub struct TsdbOptions {
    /// Seal the memtable into a segment once it holds this many events.
    pub memtable_max_events: usize,
    /// `compact()` merges runs of two or more consecutive segments that
    /// are each smaller than this.
    pub small_segment_events: usize,
    /// Fsync the WAL on every append (durable but slow; off by default —
    /// the OS page cache already survives process death, the sync only
    /// matters for whole-machine crashes).
    pub sync_wal: bool,
}

impl Default for TsdbOptions {
    fn default() -> Self {
        TsdbOptions {
            memtable_max_events: 4_096,
            small_segment_events: 4_096,
            sync_wal: false,
        }
    }
}

/// Monotonic observability counters for one store.
#[derive(Debug, Default)]
pub struct TsdbStats {
    appended: AtomicU64,
    sealed_segments: AtomicU64,
    compactions: AtomicU64,
    segments_scanned: AtomicU64,
    segments_pruned: AtomicU64,
    expired_events: AtomicU64,
    wal_recovered_events: AtomicU64,
    wal_torn_bytes: AtomicU64,
    append_us: jamm_core::obs::Histogram,
    seal_us: jamm_core::obs::Histogram,
    compact_us: jamm_core::obs::Histogram,
    scan_setup_us: jamm_core::obs::Histogram,
}

impl TsdbStats {
    /// Events appended since open.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Memtable seals performed (segments created by sealing).
    pub fn sealed_segments(&self) -> u64 {
        self.sealed_segments.load(Ordering::Relaxed)
    }

    /// Compaction merges performed.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Segments whose data a scan actually read.
    pub fn segments_scanned(&self) -> u64 {
        self.segments_scanned.load(Ordering::Relaxed)
    }

    /// Segments skipped by catalog pruning (non-overlapping time range,
    /// absent host or absent event type).
    pub fn segments_pruned(&self) -> u64 {
        self.segments_pruned.load(Ordering::Relaxed)
    }

    /// Events dropped by retention cuts.
    pub fn expired_events(&self) -> u64 {
        self.expired_events.load(Ordering::Relaxed)
    }

    /// Events recovered from the WAL at open.
    pub fn wal_recovered_events(&self) -> u64 {
        self.wal_recovered_events.load(Ordering::Relaxed)
    }

    /// Torn-tail bytes discarded from the WAL at open.
    pub fn wal_torn_bytes(&self) -> u64 {
        self.wal_torn_bytes.load(Ordering::Relaxed)
    }

    /// Microsecond latency of append calls (WAL write + memtable insert;
    /// one sample per call, batched or not).
    pub fn append_us(&self) -> &jamm_core::obs::Histogram {
        &self.append_us
    }

    /// Microsecond latency of memtable seals that produced a segment.
    pub fn seal_us(&self) -> &jamm_core::obs::Histogram {
        &self.seal_us
    }

    /// Microsecond latency of compaction passes.
    pub fn compact_us(&self) -> &jamm_core::obs::Histogram {
        &self.compact_us
    }

    /// Microsecond latency of scan planning (catalog pruning and cursor
    /// setup; decoding is lazy and not included).
    pub fn scan_setup_us(&self) -> &jamm_core::obs::Histogram {
        &self.scan_setup_us
    }
}

/// Aggregate description of a whole store (every segment plus the
/// memtable) — the data behind the archive's directory catalog entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreCatalog {
    /// Total stored events.
    pub event_count: usize,
    /// Earliest stored timestamp.
    pub earliest: Option<Timestamp>,
    /// Latest stored timestamp.
    pub latest: Option<Timestamp>,
    /// Hosts present, with event counts.
    pub hosts: BTreeMap<String, usize>,
    /// Event types present, with event counts.
    pub event_types: BTreeMap<String, usize>,
}

#[derive(Debug)]
struct Inner {
    mem: MemTable,
    segments: Vec<Arc<Segment>>,
    wal: Option<Wal>,
    next_seq: u64,
    next_segment_id: u64,
}

/// An embedded time-series store of ULM events.
#[derive(Debug)]
pub struct Tsdb {
    inner: RwLock<Inner>,
    dir: Option<PathBuf>,
    opts: TsdbOptions,
    stats: TsdbStats,
}

impl Tsdb {
    /// A volatile store: no WAL, no segment files, everything else (seal,
    /// compact, retain, pruning) identical.  This is what `EventArchive::
    /// new()` uses.
    pub fn in_memory() -> Tsdb {
        Tsdb::in_memory_with(TsdbOptions::default())
    }

    /// In-memory store with explicit options.
    pub fn in_memory_with(opts: TsdbOptions) -> Tsdb {
        Tsdb {
            inner: RwLock::new(Inner {
                mem: MemTable::new(),
                segments: Vec::new(),
                wal: None,
                next_seq: 1,
                next_segment_id: 1,
            }),
            dir: None,
            opts,
            stats: TsdbStats::default(),
        }
    }

    /// Open (creating if needed) a persistent store in `dir`: load every
    /// segment file, replay the WAL into the memtable, and continue
    /// sequence numbering where the previous process stopped.
    pub fn open(dir: impl AsRef<Path>) -> Result<Tsdb> {
        Tsdb::open_with(dir, TsdbOptions::default())
    }

    /// Open a persistent store with explicit options.
    pub fn open_with(dir: impl AsRef<Path>, opts: TsdbOptions) -> Result<Tsdb> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(crate::TsdbError::from)?;
        let mut segments = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(crate::TsdbError::from)? {
            let path = entry.map_err(crate::TsdbError::from)?.path();
            match path.extension().and_then(|e| e.to_str()) {
                Some(SEGMENT_EXT) => segments.push(Arc::new(Segment::read_from_file(&path)?)),
                // A crash mid-write leaves `.tmp` files behind (segment
                // writes and WAL rewrites both go through write-then-
                // rename); they are dead weight, clean them up.
                Some("tmp") => {
                    let _ = std::fs::remove_file(&path);
                }
                _ => {}
            }
        }
        segments.sort_by_key(|s| s.id());
        let next_segment_id = segments.iter().map(|s| s.id()).max().unwrap_or(0) + 1;
        let seg_max_seq = segments.iter().map(|s| s.max_seq()).max().unwrap_or(0);
        let mut next_seq = seg_max_seq + 1;

        // Crash reconciliation.  A crash between writing a replacement
        // segment (compaction merge, retention rewrite) and deleting its
        // inputs leaves both generations on disk.  Normal operation gives
        // segments pairwise-disjoint sequence ranges, so any overlap
        // identifies such a leftover — and the higher id is always the
        // newer, complete replacement.  Keep it, drop the older file.
        let mut reconciled: Vec<Arc<Segment>> = Vec::with_capacity(segments.len());
        let mut stale: Vec<u64> = Vec::new();
        for seg in segments.into_iter().rev() {
            let overlaps = reconciled
                .iter()
                .any(|kept| seg.min_seq() <= kept.max_seq() && kept.min_seq() <= seg.max_seq());
            if overlaps {
                stale.push(seg.id());
            } else {
                reconciled.push(seg);
            }
        }
        reconciled.reverse();
        let segments = reconciled;
        for id in stale {
            let _ = std::fs::remove_file(dir.join(Segment::file_name(id)));
        }

        let (recovered, torn) = Wal::replay(&dir)?;
        let stats = TsdbStats::default();
        stats.wal_torn_bytes.store(torn, Ordering::Relaxed);
        let mut mem = MemTable::new();
        let mut recovered_count = 0u64;
        for (seq, event) in recovered {
            next_seq = next_seq.max(seq + 1);
            // A crash between sealing a segment and resetting the WAL
            // leaves the sealed events in both places; records already
            // durable in a segment are skipped, not duplicated.
            if seq <= seg_max_seq {
                continue;
            }
            mem.insert(seq, Arc::new(event));
            recovered_count += 1;
        }
        stats
            .wal_recovered_events
            .store(recovered_count, Ordering::Relaxed);
        let wal = Wal::open(&dir, opts.sync_wal)?;
        Ok(Tsdb {
            inner: RwLock::new(Inner {
                mem,
                segments,
                wal: Some(wal),
                next_seq,
                next_segment_id,
            }),
            dir: Some(dir),
            opts,
            stats,
        })
    }

    /// The store's directory (`None` for an in-memory store).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The store's options.
    pub fn options(&self) -> &TsdbOptions {
        &self.opts
    }

    /// The store's observability counters.
    pub fn stats(&self) -> &TsdbStats {
        &self.stats
    }

    /// Append one event; returns its sequence number.  Seals the memtable
    /// automatically when it reaches the configured bound.  As with
    /// [`Tsdb::try_append_batch`], once the event is accepted (WAL write
    /// succeeded) a failing auto-seal is not an error — the event is
    /// durable, and reporting failure would make a retrying caller store
    /// it twice.
    pub fn append(&self, event: Event) -> Result<u64> {
        self.append_shared(Arc::new(event))
    }

    /// Append one already-shared event: the zero-copy ingest path.  The
    /// memtable keeps the caller's `Arc`; the WAL encodes from a borrow.
    pub fn append_shared(&self, event: SharedEvent) -> Result<u64> {
        let start = std::time::Instant::now();
        let mut inner = self.inner.write();
        let seq = inner.next_seq;
        if let Some(wal) = &mut inner.wal {
            wal.append(seq, &event)?;
        }
        inner.next_seq += 1;
        inner.mem.insert(seq, event);
        self.stats.appended.fetch_add(1, Ordering::Relaxed);
        self.stats.append_us.record_micros(start.elapsed());
        if inner.mem.len() >= self.opts.memtable_max_events {
            let _ = self.seal_inner(&mut inner);
        }
        Ok(seq)
    }

    /// Append a batch of shared events under one lock acquisition and (for
    /// persistent stores) one WAL write, without copying any event: the
    /// memtable takes refcounted handles.  The caller keeps its slice (and
    /// its buffer capacity) — this is the archiver's scratch-reuse path.
    pub fn append_shared_batch(&self, events: &[SharedEvent]) -> Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        let start = std::time::Instant::now();
        let mut inner = self.inner.write();
        let first_seq = inner.next_seq;
        if let Some(wal) = &mut inner.wal {
            wal.append_batch(first_seq, events)?;
        }
        let n = events.len();
        for (i, event) in events.iter().enumerate() {
            inner
                .mem
                .insert(first_seq + i as u64, SharedEvent::clone(event));
        }
        inner.next_seq += n as u64;
        self.stats.appended.fetch_add(n as u64, Ordering::Relaxed);
        self.stats.append_us.record_micros(start.elapsed());
        while inner.mem.len() >= self.opts.memtable_max_events {
            if !matches!(self.seal_inner(&mut inner), Ok(Some(_))) {
                break;
            }
        }
        Ok(n)
    }

    /// Append a batch under one lock acquisition and (for persistent
    /// stores) one WAL write.  Returns how many events were appended.
    pub fn append_batch(&self, events: Vec<Event>) -> Result<usize> {
        self.try_append_batch(events).map_err(|(e, _)| e)
    }

    /// Like [`Tsdb::append_batch`], but hands the batch back on failure so
    /// the caller can retry it later instead of losing the events.  Once
    /// the batch is accepted (WAL write succeeded), a failing *auto-seal*
    /// is not an error: the events are already durable, and the seal
    /// retries on the next append or explicit [`Tsdb::seal`].
    pub fn try_append_batch(
        &self,
        events: Vec<Event>,
    ) -> std::result::Result<usize, (crate::TsdbError, Vec<Event>)> {
        let shared: Vec<SharedEvent> = events.into_iter().map(Arc::new).collect();
        match self.append_shared_batch(&shared) {
            Ok(n) => Ok(n),
            // Hand the batch back by unwrapping the (sole) handles; no
            // deep copy happens on this path.
            Err(e) => Err((
                e,
                shared
                    .into_iter()
                    .map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
                    .collect(),
            )),
        }
    }

    /// Seal the memtable into a new immutable segment now.  Returns the
    /// new segment's catalog, or `None` when the memtable was empty.
    pub fn seal(&self) -> Result<Option<SegmentCatalog>> {
        let mut inner = self.inner.write();
        self.seal_inner(&mut inner)
    }

    fn seal_inner(&self, inner: &mut Inner) -> Result<Option<SegmentCatalog>> {
        if inner.mem.is_empty() {
            return Ok(None);
        }
        let start = std::time::Instant::now();
        let batch = inner.mem.drain_sorted();
        let id = inner.next_segment_id;
        let seg = Segment::build(id, &batch);
        if let Some(dir) = &self.dir {
            if let Err(e) = seg.write_to_dir(dir) {
                // Keep the data: put the batch back so nothing is lost and
                // a later seal can retry.
                for (seq, event) in batch {
                    inner.mem.insert(seq, event);
                }
                return Err(e);
            }
        }
        inner.next_segment_id += 1;
        let catalog = seg.catalog().clone();
        // Commit the segment to the in-memory list *before* touching the
        // WAL: the data is durable at this point, and it must not vanish
        // from the live store if the WAL reset below fails.
        inner.segments.push(Arc::new(seg));
        self.stats.sealed_segments.fetch_add(1, Ordering::Relaxed);
        // The segment is durable; the WAL's copy of these events is now
        // redundant.  A failing reset is tolerated: replay skips records
        // whose sequence is covered by a segment, so a stale WAL merely
        // wastes space until the next successful seal.
        if let Some(wal) = &mut inner.wal {
            let _ = wal.reset();
        }
        self.stats.seal_us.record_micros(start.elapsed());
        Ok(Some(catalog))
    }

    /// Merge every run of two or more consecutive segments that are each
    /// smaller than [`TsdbOptions::small_segment_events`].  Returns the
    /// net number of segments removed.
    ///
    /// The replacement list is built entirely on the side and only
    /// committed once every merged segment is durable, so an I/O error
    /// leaves the store exactly as it was.
    pub fn compact(&self) -> Result<usize> {
        let start = std::time::Instant::now();
        let mut inner = self.inner.write();
        let threshold = self.opts.small_segment_events;
        let before = inner.segments.len();
        let mut result: Vec<Arc<Segment>> = Vec::with_capacity(before);
        let mut run: Vec<Arc<Segment>> = Vec::new();
        let mut stale_ids: Vec<u64> = Vec::new();
        let mut next_id = inner.next_segment_id;
        let mut merges = 0u64;

        let flush_run = |run: &mut Vec<Arc<Segment>>,
                         result: &mut Vec<Arc<Segment>>,
                         next_id: &mut u64,
                         stale_ids: &mut Vec<u64>,
                         merges: &mut u64|
         -> Result<()> {
            if run.len() < 2 {
                result.append(run);
                return Ok(());
            }
            let mut merged: Vec<(u64, Event)> = Vec::new();
            for seg in run.iter() {
                let mut cursor = seg.cursor();
                while let Some(item) = cursor.next_event() {
                    let (seq, event) = item?;
                    merged.push((seq, event));
                }
            }
            merged.sort_by_key(|(seq, e)| (e.timestamp, *seq));
            let seg = Segment::build(*next_id, &merged);
            if let Some(dir) = &self.dir {
                seg.write_to_dir(dir)?;
            }
            *next_id += 1;
            *merges += 1;
            stale_ids.extend(run.iter().map(|s| s.id()));
            run.clear();
            result.push(Arc::new(seg));
            Ok(())
        };

        for seg in &inner.segments {
            if seg.len() < threshold {
                run.push(Arc::clone(seg));
            } else {
                flush_run(
                    &mut run,
                    &mut result,
                    &mut next_id,
                    &mut stale_ids,
                    &mut merges,
                )?;
                result.push(Arc::clone(seg));
            }
        }
        flush_run(
            &mut run,
            &mut result,
            &mut next_id,
            &mut stale_ids,
            &mut merges,
        )?;

        // Commit point: every merged segment is on disk.
        inner.next_segment_id = next_id;
        inner.segments = result;
        self.stats.compactions.fetch_add(merges, Ordering::Relaxed);
        self.remove_segment_files(&stale_ids);
        self.stats.compact_us.record_micros(start.elapsed());
        Ok(before - inner.segments.len())
    }

    /// Drop every event with timestamp strictly before `cutoff` (retention
    /// cut).  Whole expired segments are dropped without decoding;
    /// straddling segments are rewritten.  Returns events removed.
    ///
    /// Like [`Tsdb::compact`], the new segment list is committed only
    /// after every rewritten segment is durable; an I/O error leaves the
    /// store untouched.  A crash before the stale files are unlinked can
    /// resurrect already-expired whole segments at the next open — that
    /// is over-retention, not data loss, and the next retention pass drops
    /// them again.
    pub fn retain(&self, cutoff: Timestamp) -> Result<usize> {
        let mut inner = self.inner.write();
        let mut kept: Vec<Arc<Segment>> = Vec::with_capacity(inner.segments.len());
        let mut stale_ids: Vec<u64> = Vec::new();
        let mut removed = 0usize;
        let mut next_id = inner.next_segment_id;
        for seg in &inner.segments {
            let c = seg.catalog();
            if c.max_ts < cutoff {
                removed += seg.len();
                stale_ids.push(seg.id());
            } else if c.min_ts >= cutoff {
                kept.push(Arc::clone(seg));
            } else {
                // Straddles the cutoff: rewrite the surviving suffix.
                let mut survivors: Vec<(u64, Event)> = Vec::new();
                let mut cursor = seg.cursor();
                while let Some(item) = cursor.next_event() {
                    let (seq, event) = item?;
                    if event.timestamp >= cutoff {
                        survivors.push((seq, event));
                    }
                }
                removed += seg.len() - survivors.len();
                survivors.sort_by_key(|(seq, e)| (e.timestamp, *seq));
                let new_seg = Segment::build(next_id, &survivors);
                if let Some(dir) = &self.dir {
                    new_seg.write_to_dir(dir)?;
                }
                next_id += 1;
                stale_ids.push(seg.id());
                kept.push(Arc::new(new_seg));
            }
        }
        // Commit point: every rewritten segment is on disk.
        inner.next_segment_id = next_id;
        inner.segments = kept;
        self.remove_segment_files(&stale_ids);

        let mem_removed = inner.mem.prune_before(cutoff);
        removed += mem_removed;
        if mem_removed > 0 {
            // Rewrite the WAL to match the pruned memtable, else replay
            // would resurrect expired events.  The rewrite is atomic
            // (write-new-then-rename), so a crash leaves either the old or
            // the new log — never a torn mix that loses acknowledged
            // events.
            let survivors = inner.mem.snapshot();
            if let Some(wal) = &mut inner.wal {
                wal.rewrite(&survivors)?;
            }
        }
        self.stats
            .expired_events
            .fetch_add(removed as u64, Ordering::Relaxed);
        Ok(removed)
    }

    fn remove_segment_files(&self, ids: &[u64]) {
        if let Some(dir) = &self.dir {
            for &id in ids {
                let _ = std::fs::remove_file(dir.join(Segment::file_name(id)));
            }
        }
    }

    /// Stream every event matching `query`, in `(timestamp, sequence)`
    /// order (the classic host/type/range shape; compiled to a query-plane
    /// plan internally).
    pub fn scan(&self, query: &TsdbQuery) -> ScanIter {
        self.scan_plan(&query.to_plan())
    }

    /// Stream every event a compiled query-plane [`jamm_core::query::Plan`]
    /// matches, in `(timestamp, sequence)` order.  Segments whose catalog
    /// cannot satisfy the plan's pushdown facts — time window, host and
    /// event-type sets, per-series counts, severity floor — are pruned
    /// without reading data (observable via [`TsdbStats::segments_pruned`]);
    /// the rest decode lazily as the iterator is consumed, and a pushed-down
    /// limit stops the merge early.  The iterator evaluates through its own
    /// clone of the plan (fresh stateful memory per scan).
    pub fn scan_plan(&self, plan: &jamm_core::query::Plan) -> ScanIter {
        let start = std::time::Instant::now();
        let plan = plan.clone();
        let inner = self.inner.read();
        let mem = inner.mem.matching(plan.facts());
        let mut cursors = Vec::new();
        let mut scanned = 0u64;
        let mut pruned = 0u64;
        for seg in &inner.segments {
            if seg.catalog().overlaps(plan.facts()) {
                scanned += 1;
                cursors.push(seg.cursor());
            } else {
                pruned += 1;
            }
        }
        self.stats
            .segments_scanned
            .fetch_add(scanned, Ordering::Relaxed);
        self.stats
            .segments_pruned
            .fetch_add(pruned, Ordering::Relaxed);
        self.stats.scan_setup_us.record_micros(start.elapsed());
        ScanIter::new(plan, mem, cursors)
    }

    /// Total number of stored events (memtable plus every segment).
    pub fn len(&self) -> usize {
        let inner = self.inner.read();
        inner.mem.len() + inner.segments.iter().map(|s| s.len()).sum::<usize>()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.inner.read().segments.len()
    }

    /// Number of events in the hot (memtable) tier.
    pub fn memtable_len(&self) -> usize {
        self.inner.read().mem.len()
    }

    /// Per-segment catalogs, in segment order (what the archiver publishes
    /// in the directory).
    pub fn segment_catalogs(&self) -> Vec<SegmentCatalog> {
        self.inner
            .read()
            .segments
            .iter()
            .map(|s| s.catalog().clone())
            .collect()
    }

    /// Aggregate catalog over every tier.
    pub fn catalog(&self) -> StoreCatalog {
        let inner = self.inner.read();
        let mut out = StoreCatalog::default();
        for seg in &inner.segments {
            let c = seg.catalog();
            out.event_count += c.event_count;
            out.earliest = Some(match out.earliest {
                Some(e) => e.min(c.min_ts),
                None => c.min_ts,
            });
            out.latest = Some(match out.latest {
                Some(l) => l.max(c.max_ts),
                None => c.max_ts,
            });
            for (h, n) in &c.hosts {
                *out.hosts.entry(h.clone()).or_insert(0) += n;
            }
            for (t, n) in &c.event_types {
                *out.event_types.entry(t.clone()).or_insert(0) += n;
            }
        }
        for e in inner.mem.iter() {
            out.event_count += 1;
            *out.hosts.entry(e.host.clone()).or_insert(0) += 1;
            *out.event_types.entry(e.event_type.clone()).or_insert(0) += 1;
        }
        if let Some(min) = inner.mem.min_ts() {
            out.earliest = Some(out.earliest.map_or(min, |e| e.min(min)));
        }
        if let Some(max) = inner.mem.max_ts() {
            out.latest = Some(out.latest.map_or(max, |l| l.max(max)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;
    use jamm_ulm::Level;

    fn ev(host: &str, ty: &str, t: u64) -> Event {
        Event::builder("sensor", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t))
            .value(t as f64)
            .build()
    }

    fn small_opts(memtable: usize) -> TsdbOptions {
        TsdbOptions {
            memtable_max_events: memtable,
            small_segment_events: memtable,
            sync_wal: false,
        }
    }

    #[test]
    fn append_seal_scan_round_trip() {
        let db = Tsdb::in_memory_with(small_opts(10));
        for t in 0..35 {
            db.append(ev("h", "X", t)).unwrap();
        }
        // 3 auto-seals at 10/20/30 events, 5 left hot.
        assert_eq!(db.segment_count(), 3);
        assert_eq!(db.memtable_len(), 5);
        assert_eq!(db.len(), 35);
        let all: Vec<Event> = db.scan(&TsdbQuery::all()).collect();
        assert_eq!(all.len(), 35);
        let times: Vec<u64> = all.iter().map(|e| e.timestamp.as_secs()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn batch_append_is_equivalent_to_singles() {
        let a = Tsdb::in_memory_with(small_opts(8));
        let b = Tsdb::in_memory_with(small_opts(8));
        let events: Vec<Event> = (0..20).map(|t| ev("h", "X", t)).collect();
        for e in events.clone() {
            a.append(e).unwrap();
        }
        b.append_batch(events).unwrap();
        let ea: Vec<Event> = a.scan(&TsdbQuery::all()).collect();
        let eb: Vec<Event> = b.scan(&TsdbQuery::all()).collect();
        assert_eq!(ea, eb);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn scan_prunes_non_overlapping_segments() {
        let db = Tsdb::in_memory_with(small_opts(10));
        // Three segments covering [0,10), [100,110), [200,210).
        for base in [0u64, 100, 200] {
            for t in 0..10 {
                db.append(ev("h", "X", base + t)).unwrap();
            }
            db.seal().unwrap();
        }
        assert_eq!(db.segment_count(), 3);
        let hits: Vec<Event> = db
            .scan(&TsdbQuery::all().between(Timestamp::from_secs(100), Timestamp::from_secs(110)))
            .collect();
        assert_eq!(hits.len(), 10);
        assert_eq!(db.stats().segments_scanned(), 1);
        assert_eq!(db.stats().segments_pruned(), 2);
    }

    #[test]
    fn host_and_type_pruning() {
        let db = Tsdb::in_memory_with(small_opts(4));
        for t in 0..4 {
            db.append(ev("alpha", "CPU", t)).unwrap();
        }
        db.seal().unwrap();
        for t in 4..8 {
            db.append(ev("beta", "MEM", t)).unwrap();
        }
        db.seal().unwrap();
        let hits: Vec<Event> = db.scan(&TsdbQuery::all().host("beta")).collect();
        assert_eq!(hits.len(), 4);
        assert_eq!(db.stats().segments_pruned(), 1);
        let hits: Vec<Event> = db.scan(&TsdbQuery::all().event_type("CPU")).collect();
        assert_eq!(hits.len(), 4);
        assert_eq!(db.stats().segments_pruned(), 2);
    }

    #[test]
    fn level_floor_pruning_skips_routine_segments() {
        use jamm_core::query::Predicate;
        let db = Tsdb::in_memory_with(small_opts(4));
        for t in 0..4 {
            db.append(ev("h", "X", t)).unwrap(); // Usage-level segment
        }
        db.seal().unwrap();
        for t in 4..8 {
            let mut e = ev("h", "X", t);
            e.level = jamm_ulm::Level::Error;
            db.append(e).unwrap();
        }
        db.seal().unwrap();
        let plan = Predicate::parse("(level>=warning)").unwrap().compile();
        let hits: Vec<Event> = db.scan_plan(&plan).collect();
        assert_eq!(hits.len(), 4);
        assert_eq!(db.stats().segments_scanned(), 1);
        assert_eq!(
            db.stats().segments_pruned(),
            1,
            "the Usage segment is skipped"
        );
    }

    #[test]
    fn series_count_pruning_skips_absent_host_type_pairs() {
        use jamm_core::query::Predicate;
        let db = Tsdb::in_memory_with(small_opts(4));
        // Segment 1 holds (alpha, CPU) and (beta, MEM); segment 2 holds
        // (alpha, MEM) and (beta, CPU).  Host-only or type-only pruning
        // cannot separate them — the per-series counts can.
        for t in 0..2 {
            db.append(ev("alpha", "CPU", t)).unwrap();
            db.append(ev("beta", "MEM", t)).unwrap();
        }
        db.seal().unwrap();
        for t in 2..4 {
            db.append(ev("alpha", "MEM", t)).unwrap();
            db.append(ev("beta", "CPU", t)).unwrap();
        }
        db.seal().unwrap();
        let plan = Predicate::parse("(&(host=alpha)(type=CPU))")
            .unwrap()
            .compile();
        let hits: Vec<Event> = db.scan_plan(&plan).collect();
        assert_eq!(hits.len(), 2);
        assert!(hits
            .iter()
            .all(|e| e.host == "alpha" && e.event_type == "CPU"));
        assert_eq!(db.stats().segments_scanned(), 1);
        assert_eq!(
            db.stats().segments_pruned(),
            1,
            "series-count tier prunes the segment lacking (alpha, CPU)"
        );
    }

    #[test]
    fn limit_pushdown_stops_the_scan_early() {
        use jamm_core::query::Predicate;
        let db = Tsdb::in_memory_with(small_opts(10));
        for t in 0..30 {
            db.append(ev("h", "X", t)).unwrap();
        }
        let plan = Predicate::parse("(limit=5)").unwrap().compile();
        let hits: Vec<Event> = db.scan_plan(&plan).collect();
        assert_eq!(hits.len(), 5);
        assert_eq!(
            hits.iter()
                .map(|e| e.timestamp.as_secs())
                .collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4],
            "the limit takes the earliest events, not an arbitrary subset"
        );
    }

    #[test]
    fn compact_merges_small_segment_runs() {
        let db = Tsdb::in_memory_with(small_opts(100));
        for round in 0..6u64 {
            for t in 0..5 {
                db.append(ev("h", "X", round * 5 + t)).unwrap();
            }
            db.seal().unwrap();
        }
        assert_eq!(db.segment_count(), 6);
        let before: Vec<Event> = db.scan(&TsdbQuery::all()).collect();
        let removed = db.compact().unwrap();
        assert_eq!(removed, 5, "six small segments merge into one");
        assert_eq!(db.segment_count(), 1);
        let after: Vec<Event> = db.scan(&TsdbQuery::all()).collect();
        assert_eq!(before, after, "compaction preserves contents and order");
        assert_eq!(db.stats().compactions(), 1);
    }

    #[test]
    fn compact_leaves_large_segments_alone() {
        let db = Tsdb::in_memory_with(TsdbOptions {
            memtable_max_events: 100,
            small_segment_events: 3,
            sync_wal: false,
        });
        for t in 0..10 {
            db.append(ev("h", "X", t)).unwrap();
        }
        db.seal().unwrap(); // 10 events >= threshold 3: not small
        for t in 10..12 {
            db.append(ev("h", "X", t)).unwrap();
        }
        db.seal().unwrap(); // small, but a run of one
        assert_eq!(db.compact().unwrap(), 0);
        assert_eq!(db.segment_count(), 2);
    }

    #[test]
    fn retain_drops_and_rewrites() {
        let db = Tsdb::in_memory_with(small_opts(10));
        for t in 0..30 {
            db.append(ev("h", "X", t)).unwrap();
        }
        // Segments [0,10), [10,20), memtable [20,30).
        assert_eq!(db.segment_count(), 3); // auto-seal at 10, 20, 30
        let removed = db.retain(Timestamp::from_secs(15)).unwrap();
        assert_eq!(removed, 15);
        assert_eq!(db.len(), 15);
        let all: Vec<Event> = db.scan(&TsdbQuery::all()).collect();
        assert!(all.iter().all(|e| e.timestamp >= Timestamp::from_secs(15)));
        assert_eq!(db.stats().expired_events(), 15);
    }

    #[test]
    fn catalog_aggregates_all_tiers() {
        let db = Tsdb::in_memory_with(small_opts(5));
        for t in 0..5 {
            db.append(ev("a", "CPU", t)).unwrap(); // seals at 5
        }
        for t in 5..8 {
            db.append(ev("b", "MEM", t)).unwrap(); // stays hot
        }
        let c = db.catalog();
        assert_eq!(c.event_count, 8);
        assert_eq!(c.earliest, Some(Timestamp::from_secs(0)));
        assert_eq!(c.latest, Some(Timestamp::from_secs(7)));
        assert_eq!(c.hosts.get("a"), Some(&5));
        assert_eq!(c.hosts.get("b"), Some(&3));
        assert_eq!(c.event_types.len(), 2);
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let dir = TempDir::new("store-reopen");
        {
            let db = Tsdb::open_with(dir.path(), small_opts(10)).unwrap();
            for t in 0..25 {
                db.append(ev("h", "X", t)).unwrap();
            }
            assert_eq!(db.segment_count(), 2);
            assert_eq!(db.memtable_len(), 5);
            // No graceful shutdown: drop with 5 events only in the WAL.
        }
        let db = Tsdb::open_with(dir.path(), small_opts(10)).unwrap();
        assert_eq!(db.len(), 25);
        assert_eq!(db.segment_count(), 2);
        assert_eq!(db.memtable_len(), 5);
        assert_eq!(db.stats().wal_recovered_events(), 5);
        // Sequence numbering continues: appending and sealing stays ordered.
        db.append(ev("h", "X", 25)).unwrap();
        let all: Vec<Event> = db.scan(&TsdbQuery::all()).collect();
        assert_eq!(all.len(), 26);
    }

    #[test]
    fn reopen_after_retention_does_not_resurrect() {
        let dir = TempDir::new("store-retain-reopen");
        {
            let db = Tsdb::open_with(dir.path(), small_opts(100)).unwrap();
            for t in 0..20 {
                db.append(ev("h", "X", t)).unwrap();
            }
            db.retain(Timestamp::from_secs(10)).unwrap();
            assert_eq!(db.len(), 10);
        }
        let db = Tsdb::open_with(dir.path(), small_opts(100)).unwrap();
        assert_eq!(db.len(), 10, "expired events must not come back");
        let all: Vec<Event> = db.scan(&TsdbQuery::all()).collect();
        assert!(all.iter().all(|e| e.timestamp >= Timestamp::from_secs(10)));
    }

    #[test]
    fn crash_between_seal_and_wal_reset_does_not_duplicate() {
        let dir = TempDir::new("store-seal-crash");
        let wal_path = dir.path().join(crate::wal::WAL_FILE);
        let db = Tsdb::open_with(dir.path(), small_opts(100)).unwrap();
        for t in 0..10 {
            db.append(ev("h", "X", t)).unwrap();
        }
        let wal_backup = std::fs::read(&wal_path).unwrap();
        db.seal().unwrap();
        drop(db);
        // Simulate a crash between the segment rename and the WAL reset:
        // the pre-seal WAL reappears alongside the sealed segment.
        std::fs::write(&wal_path, &wal_backup).unwrap();
        let db = Tsdb::open_with(dir.path(), small_opts(100)).unwrap();
        assert_eq!(db.len(), 10, "sealed events must not be replayed twice");
        assert_eq!(db.stats().wal_recovered_events(), 0);
        let all: Vec<Event> = db.scan(&TsdbQuery::all()).collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn crash_between_compact_and_stale_delete_does_not_duplicate() {
        let dir = TempDir::new("store-compact-crash");
        let seg_files = |dir: &std::path::Path| -> Vec<std::path::PathBuf> {
            let mut v: Vec<_> = std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(SEGMENT_EXT))
                .collect();
            v.sort();
            v
        };
        let db = Tsdb::open_with(dir.path(), small_opts(100)).unwrap();
        for t in 0..5 {
            db.append(ev("h", "X", t)).unwrap();
        }
        db.seal().unwrap();
        for t in 5..10 {
            db.append(ev("h", "X", t)).unwrap();
        }
        db.seal().unwrap();
        let backups: Vec<(std::path::PathBuf, Vec<u8>)> = seg_files(dir.path())
            .into_iter()
            .map(|p| (p.clone(), std::fs::read(&p).unwrap()))
            .collect();
        assert_eq!(backups.len(), 2);
        assert_eq!(db.compact().unwrap(), 1);
        drop(db);
        // Simulate a crash after the merged segment was written but before
        // its inputs were deleted: all three generations are on disk.
        for (p, bytes) in &backups {
            std::fs::write(p, bytes).unwrap();
        }
        assert_eq!(seg_files(dir.path()).len(), 3);
        let db = Tsdb::open_with(dir.path(), small_opts(100)).unwrap();
        assert_eq!(db.len(), 10, "merged events must not appear twice");
        assert_eq!(db.segment_count(), 1);
        assert_eq!(
            seg_files(dir.path()).len(),
            1,
            "stale crash leftovers are deleted at open"
        );
    }

    #[test]
    fn seal_empty_memtable_is_a_noop() {
        let db = Tsdb::in_memory();
        assert!(db.seal().unwrap().is_none());
        assert!(db.is_empty());
    }
}
