//! The in-memory write buffer: the "hot" tier that absorbs appends until
//! it seals into an immutable segment.
//!
//! Events are keyed by `(timestamp, sequence)` so identical timestamps
//! never collide and iteration is already in the store's canonical order —
//! sealing is a straight drain, no sort.

use std::collections::BTreeMap;

use jamm_core::query::Facts;
use jamm_ulm::{Event, SharedEvent, Timestamp};

/// Sorted in-memory buffer of not-yet-sealed events.
///
/// Events are held as [`SharedEvent`]s: the archiver's ingest path hands
/// the same `Arc`s the gateway fanned out straight into the buffer, so
/// archiving costs a refcount bump per event instead of a deep copy.
#[derive(Debug, Default)]
pub struct MemTable {
    events: BTreeMap<(Timestamp, u64), SharedEvent>,
    approx_bytes: usize,
}

impl MemTable {
    /// An empty memtable.
    pub fn new() -> MemTable {
        MemTable::default()
    }

    /// Insert one event under its sequence number.
    pub fn insert(&mut self, seq: u64, event: SharedEvent) {
        self.approx_bytes += event.approx_size();
        self.events.insert((event.timestamp, seq), event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Approximate buffered payload bytes (ULM text sizing).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Earliest buffered timestamp.
    pub fn min_ts(&self) -> Option<Timestamp> {
        self.events.keys().next().map(|(t, _)| *t)
    }

    /// Latest buffered timestamp.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.events.keys().next_back().map(|(t, _)| *t)
    }

    /// Move everything out in `(timestamp, sequence)` order, leaving the
    /// memtable empty.  This is the seal path.
    pub fn drain_sorted(&mut self) -> Vec<(u64, SharedEvent)> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.events)
            .into_iter()
            .map(|((_, seq), e)| (seq, e))
            .collect()
    }

    /// Snapshot the events a query's pushdown [`Facts`] admit, in order,
    /// as `(seq, event)` pairs.  The snapshot is bounded by the memtable's
    /// seal threshold, so this is the only place a scan materializes
    /// anything.  Only the cheap facts apply here; the full plan runs
    /// post-merge inside the scan iterator.
    pub fn matching(&self, facts: &Facts) -> Vec<(u64, SharedEvent)> {
        let lower = facts
            .from_micros
            .map(|t| (Timestamp::from_micros(t), 0))
            .unwrap_or((Timestamp::EPOCH, 0));
        let mut out = Vec::new();
        for ((ts, seq), e) in self.events.range(lower..) {
            if let Some(to) = facts.to_micros {
                if ts.as_micros() >= to {
                    break;
                }
            }
            if facts.admits(&**e) {
                // A snapshot entry is a refcount bump, not an event copy.
                out.push((*seq, SharedEvent::clone(e)));
            }
        }
        out
    }

    /// Iterate all buffered events in order (for catalog aggregation).
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.values().map(|e| &**e)
    }

    /// Drop events strictly older than `cutoff`; returns how many were
    /// removed.
    pub fn prune_before(&mut self, cutoff: Timestamp) -> usize {
        let keep = self.events.split_off(&(cutoff, 0));
        let removed = self.events.len();
        self.events = keep;
        self.approx_bytes = self.events.values().map(|e| e.approx_size()).sum();
        removed
    }

    /// The surviving `(seq, event)` pairs in order (used to rewrite the WAL
    /// after a retention cut).
    pub fn snapshot(&self) -> Vec<(u64, SharedEvent)> {
        self.events
            .iter()
            .map(|((_, seq), e)| (*seq, SharedEvent::clone(e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::Level;

    fn ev(host: &str, ty: &str, t: u64) -> SharedEvent {
        SharedEvent::new(
            Event::builder("p", host)
                .level(Level::Usage)
                .event_type(ty)
                .timestamp(Timestamp::from_secs(t))
                .value(1.0)
                .build(),
        )
    }

    #[test]
    fn drain_is_sorted_by_time_then_seq() {
        let mut m = MemTable::new();
        m.insert(2, ev("h", "X", 10));
        m.insert(1, ev("h", "X", 20));
        m.insert(3, ev("h", "X", 10));
        let drained = m.drain_sorted();
        assert_eq!(
            drained.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }

    #[test]
    fn matching_applies_range_and_filters() {
        let mut m = MemTable::new();
        for t in 0..10 {
            m.insert(t, ev(if t % 2 == 0 { "a" } else { "b" }, "X", t));
        }
        let plan = crate::query::TsdbQuery::default()
            .between(Timestamp::from_secs(2), Timestamp::from_secs(8))
            .host("a")
            .to_plan();
        let hits = m.matching(plan.facts());
        assert_eq!(hits.len(), 3); // t = 2, 4, 6
        assert!(hits.iter().all(|(_, e)| e.host == "a"));
    }

    #[test]
    fn prune_removes_old_keeps_new() {
        let mut m = MemTable::new();
        for t in 0..10 {
            m.insert(t, ev("h", "X", t));
        }
        let removed = m.prune_before(Timestamp::from_secs(4));
        assert_eq!(removed, 4);
        assert_eq!(m.len(), 6);
        assert_eq!(m.min_ts(), Some(Timestamp::from_secs(4)));
        assert_eq!(m.snapshot().len(), 6);
    }
}
