//! Low-level byte codecs shared by the WAL and segment formats: LEB128
//! varints, zigzag signed mapping, length-prefixed strings and an FNV-1a
//! checksum.
//!
//! Everything here round-trips on arbitrary input (the deltas the segment
//! encoder produces use wrapping arithmetic, so even pathological
//! timestamps survive a round trip).

use crate::{Result, TsdbError};

/// Append a LEB128 unsigned varint.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 unsigned varint, advancing the cursor.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or(TsdbError::Corrupt("truncated varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(TsdbError::Corrupt("varint overflow"));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Map a signed value onto an unsigned one with small absolute values
/// staying small (zigzag encoding).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a zigzag varint.
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, zigzag(v));
}

/// Read a zigzag varint, advancing the cursor.
pub fn get_ivarint(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(unzigzag(get_uvarint(buf, pos)?))
}

/// Append a varint-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Read a varint-length-prefixed UTF-8 string, advancing the cursor.
pub fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_uvarint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or(TsdbError::Corrupt("truncated string"))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| TsdbError::Corrupt("invalid utf-8 string"))?
        .to_string();
    *pos = end;
    Ok(s)
}

/// Read `N` raw bytes, advancing the cursor.
pub fn get_bytes<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N]> {
    let end = pos
        .checked_add(N)
        .filter(|&e| e <= buf.len())
        .ok_or(TsdbError::Corrupt("truncated bytes"))?;
    let out: [u8; N] = buf[*pos..end].try_into().expect("exact length");
    *pos = end;
    Ok(out)
}

/// 64-bit FNV-1a hash, used as the integrity checksum of WAL records and
/// segment files (error detection, not authentication).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_boundaries() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX];
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn ivarint_round_trips_signed_extremes() {
        let mut buf = Vec::new();
        let values = [0i64, -1, 1, i64::MIN, i64::MAX, -12_345];
        for &v in &values {
            put_ivarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_values_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(unzigzag(zigzag(-1_000_000)), -1_000_000);
    }

    #[test]
    fn strings_round_trip_and_reject_truncation() {
        let mut buf = Vec::new();
        put_str(&mut buf, "dpss1.lbl.gov");
        put_str(&mut buf, "");
        let mut pos = 0;
        assert_eq!(get_str(&buf, &mut pos).unwrap(), "dpss1.lbl.gov");
        assert_eq!(get_str(&buf, &mut pos).unwrap(), "");
        let mut pos = 0;
        assert!(get_str(&buf[..3], &mut pos).is_err());
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert!(get_uvarint(&buf, &mut pos).is_err());
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
    }
}
