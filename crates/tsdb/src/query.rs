//! Range queries and the streaming scan iterator.
//!
//! [`TsdbQuery`] names what to read (half-open time range, optional host /
//! event-type restriction); [`ScanIter`] merges the memtable snapshot with
//! a cursor per surviving segment, yielding events in `(timestamp,
//! sequence)` order while decoding segment data lazily — the whole match
//! set is never materialized.

use jamm_ulm::{Event, SharedEvent, Timestamp};

use crate::segment::SegmentCursor;

/// A range query against a [`crate::Tsdb`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TsdbQuery {
    /// Inclusive lower bound on event time.
    pub from: Option<Timestamp>,
    /// Exclusive upper bound on event time.
    pub to: Option<Timestamp>,
    /// Restrict to this host.
    pub host: Option<String>,
    /// Restrict to this event type.
    pub event_type: Option<String>,
}

impl TsdbQuery {
    /// Query everything.
    pub fn all() -> TsdbQuery {
        TsdbQuery::default()
    }

    /// Builder-style: half-open time range `[from, to)`.
    pub fn between(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Builder-style: restrict to a host.
    pub fn host(mut self, host: impl Into<String>) -> Self {
        self.host = Some(host.into());
        self
    }

    /// Builder-style: restrict to an event type.
    pub fn event_type(mut self, ty: impl Into<String>) -> Self {
        self.event_type = Some(ty.into());
        self
    }

    /// Does an event satisfy every restriction?
    pub fn matches(&self, event: &Event) -> bool {
        if let Some(from) = self.from {
            if event.timestamp < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if event.timestamp >= to {
                return false;
            }
        }
        if let Some(host) = &self.host {
            if &event.host != host {
                return false;
            }
        }
        if let Some(ty) = &self.event_type {
            if &event.event_type != ty {
                return false;
            }
        }
        true
    }
}

/// One merge source: either the (pre-filtered, pre-sorted) memtable
/// snapshot or a lazily decoding segment cursor with the query applied.
enum Source {
    Mem(std::vec::IntoIter<(u64, SharedEvent)>),
    Seg(SegmentCursor),
}

/// A source plus its staged next item, for the k-way merge.
struct Peeked {
    source: Source,
    /// Next `(timestamp, seq, event)` this source will yield.
    head: Option<(Timestamp, u64, Event)>,
}

impl Peeked {
    fn advance(&mut self, query: &TsdbQuery) {
        self.head = loop {
            match &mut self.source {
                Source::Mem(iter) => {
                    // Already filtered and ordered.  Yielding an owned
                    // event deep-copies from the shared snapshot here —
                    // the scan (cold) path, never the ingest path.
                    break iter.next().map(|(seq, e)| (e.timestamp, seq, (*e).clone()));
                }
                Source::Seg(cursor) => match cursor.next_event() {
                    None => break None,
                    // Checksummed at load; a decode error here means memory
                    // corruption, so surface it loudly rather than silently
                    // truncating a historical analysis.
                    Some(Err(e)) => panic!("segment decode failed mid-scan: {e}"),
                    Some(Ok((seq, e))) => {
                        if let Some(to) = query.to {
                            if e.timestamp >= to {
                                // Sorted: nothing later can match.
                                break None;
                            }
                        }
                        if query.matches(&e) {
                            break Some((e.timestamp, seq, e));
                        }
                    }
                },
            }
        };
    }
}

/// Streaming, ordered iterator over a scan's results.
///
/// Owns everything it needs (`Arc` segment handles, a memtable snapshot),
/// so it is `'static` and can outlive the store lock it was created under.
pub struct ScanIter {
    query: TsdbQuery,
    sources: Vec<Peeked>,
}

impl ScanIter {
    pub(crate) fn new(
        query: TsdbQuery,
        mem: Vec<(u64, SharedEvent)>,
        cursors: Vec<SegmentCursor>,
    ) -> ScanIter {
        let mut sources = Vec::with_capacity(cursors.len() + 1);
        sources.push(Peeked {
            source: Source::Mem(mem.into_iter()),
            head: None,
        });
        for cursor in cursors {
            sources.push(Peeked {
                source: Source::Seg(cursor),
                head: None,
            });
        }
        for s in &mut sources {
            s.advance(&query);
        }
        sources.retain(|s| s.head.is_some());
        ScanIter { query, sources }
    }
}

impl Iterator for ScanIter {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        // K is the number of live sources (segments + memtable) — small, so
        // a linear min scan beats heap bookkeeping.
        let min = self
            .sources
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| {
                let (ts, seq, _) = s.head.as_ref().expect("exhausted sources are dropped");
                (*ts, *seq)
            })
            .map(|(i, _)| i)?;
        let item = self.sources[min].head.take().expect("staged head");
        self.sources[min].advance(&self.query);
        if self.sources[min].head.is_none() {
            self.sources.swap_remove(min);
        }
        Some(item.2)
    }
}

impl std::fmt::Debug for ScanIter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanIter")
            .field("query", &self.query)
            .field("live_sources", &self.sources.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;
    use jamm_ulm::Level;
    use std::sync::Arc;

    fn ev(t: u64, host: &str) -> Event {
        Event::builder("p", host)
            .level(Level::Usage)
            .event_type("X")
            .timestamp(Timestamp::from_secs(t))
            .value(t as f64)
            .build()
    }

    #[test]
    fn merge_interleaves_sources_in_time_order() {
        let seg_a = Arc::new(Segment::build(
            1,
            &[(1, ev(10, "a")), (3, ev(30, "a")), (5, ev(50, "a"))],
        ));
        let seg_b = Arc::new(Segment::build(2, &[(2, ev(20, "b")), (4, ev(40, "b"))]));
        let mem = vec![
            (6u64, std::sync::Arc::new(ev(25, "m"))),
            (7u64, std::sync::Arc::new(ev(60, "m"))),
        ];
        let iter = ScanIter::new(TsdbQuery::all(), mem, vec![seg_a.cursor(), seg_b.cursor()]);
        let times: Vec<u64> = iter.map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 25, 30, 40, 50, 60]);
    }

    #[test]
    fn same_timestamp_orders_by_sequence() {
        let seg = Arc::new(Segment::build(1, &[(5, ev(10, "a"))]));
        let mem = vec![
            (2u64, std::sync::Arc::new(ev(10, "m"))),
            (9u64, std::sync::Arc::new(ev(10, "m"))),
        ];
        let iter = ScanIter::new(TsdbQuery::all(), mem, vec![seg.cursor()]);
        let hosts: Vec<String> = iter.map(|e| e.host).collect();
        assert_eq!(hosts, vec!["m", "a", "m"]); // seq 2, 5, 9
    }

    #[test]
    fn filters_and_to_bound_apply_inside_segments() {
        let batch: Vec<(u64, Event)> = (0..20)
            .map(|i| (i, ev(i, if i % 2 == 0 { "even" } else { "odd" })))
            .collect();
        let seg = Arc::new(Segment::build(1, &batch));
        let q = TsdbQuery::all()
            .between(Timestamp::from_secs(4), Timestamp::from_secs(15))
            .host("even");
        let iter = ScanIter::new(q, Vec::new(), vec![seg.cursor()]);
        let times: Vec<u64> = iter.map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, vec![4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn empty_scan_yields_nothing() {
        let iter = ScanIter::new(TsdbQuery::all(), Vec::new(), Vec::new());
        assert_eq!(iter.count(), 0);
    }
}
