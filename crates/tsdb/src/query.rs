//! Plan-driven range scans and the streaming scan iterator.
//!
//! Since the query-plane refactor the storage engine answers compiled
//! [`Plan`]s from `jamm_core::query`: the plan's pushdown [`Facts`](jamm_core::query::Facts) prune
//! segments (via their catalogs) and pre-filter the merge sources, and the
//! plan itself is the row-level matcher — the same evaluator the gateway's
//! subscription filters and the directory's searches run.  [`TsdbQuery`]
//! remains as a thin builder for the classic host / event-type / time-range
//! shape; it compiles into a plan.
//!
//! [`ScanIter`] merges the memtable snapshot with a cursor per surviving
//! segment, yielding events in `(timestamp, sequence)` order while decoding
//! segment data lazily — the whole match set is never materialized.  A
//! pushed-down result limit (`(limit=N)` in query text, or
//! `ArchiveQuery::limit`) stops the merge as soon as `N` events have been
//! yielded: the remaining sources — segment handles and the memtable
//! snapshot — are dropped immediately instead of being decoded and
//! truncated afterwards.

use jamm_core::query::{Plan, Predicate};
use jamm_ulm::{Event, SharedEvent, Timestamp};

use crate::segment::{ColMode, ColScan, SegmentCursor};

/// A builder for the classic range-query shape (half-open time range,
/// optional host / event-type restriction).  Compiles into a query-plane
/// [`Plan`]; matching itself happens only there.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TsdbQuery {
    /// Inclusive lower bound on event time.
    pub from: Option<Timestamp>,
    /// Exclusive upper bound on event time.
    pub to: Option<Timestamp>,
    /// Restrict to this host.
    pub host: Option<String>,
    /// Restrict to this event type.
    pub event_type: Option<String>,
}

impl TsdbQuery {
    /// Query everything.
    pub fn all() -> TsdbQuery {
        TsdbQuery::default()
    }

    /// Builder-style: half-open time range `[from, to)`.
    pub fn between(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Builder-style: restrict to a host.
    pub fn host(mut self, host: impl Into<String>) -> Self {
        self.host = Some(host.into());
        self
    }

    /// Builder-style: restrict to an event type.
    pub fn event_type(mut self, ty: impl Into<String>) -> Self {
        self.event_type = Some(ty.into());
        self
    }

    /// Lower into the unified query-plane IR.
    pub fn to_predicate(&self) -> Predicate {
        let mut parts = Vec::new();
        if self.from.is_some() || self.to.is_some() {
            parts.push(Predicate::TimeRange {
                from_micros: self.from.map(|t| t.as_micros()),
                to_micros: self.to.map(|t| t.as_micros()),
            });
        }
        if let Some(host) = &self.host {
            parts.push(Predicate::Hosts(vec![host.clone()]));
        }
        if let Some(ty) = &self.event_type {
            parts.push(Predicate::EventTypes(vec![ty.clone()]));
        }
        Predicate::And(parts)
    }

    /// Compile into an executable plan.
    pub fn to_plan(&self) -> Plan {
        self.to_predicate().compile()
    }
}

/// One merge source: the (facts-pre-filtered, pre-sorted) memtable
/// snapshot, a lazily decoding row-major segment cursor, or a batched
/// columnar scan that filters with [`jamm_core::query::Plan::eval_batch`]
/// before materializing anything.
enum Source {
    Mem(std::vec::IntoIter<(u64, SharedEvent)>),
    Seg(SegmentCursor),
    Col(Box<ColScan>),
}

/// A source plus its staged next item, for the k-way merge.
struct Peeked {
    source: Source,
    /// Next `(timestamp, seq, event)` this source will yield.
    head: Option<(Timestamp, u64, Event)>,
    /// Whether heads from this source still need the row-at-a-time
    /// `plan.eval` post-merge.  False only for columnar sources under
    /// [`ColMode::Exact`], where the batch selection *is* the match set.
    needs_eval: bool,
}

impl Peeked {
    /// Stage the source's next admissible event.  Memtable and row-major
    /// segment sources filter by the cheap pushdown facts — the full plan
    /// (which may carry per-series state) runs post-merge, in global time
    /// order.  Columnar sources arrive pre-filtered by their batch pass.
    fn advance(&mut self, plan: &Plan, mode: ColMode) {
        let facts = plan.facts();
        self.head = loop {
            match &mut self.source {
                Source::Mem(iter) => {
                    // Already filtered and ordered.  Yielding an owned
                    // event deep-copies from the shared snapshot here —
                    // the scan (cold) path, never the ingest path.
                    break iter.next().map(|(seq, e)| (e.timestamp, seq, (*e).clone()));
                }
                Source::Seg(cursor) => match cursor.next_event() {
                    None => break None,
                    // Checksummed at load; a decode error here means memory
                    // corruption, so surface it loudly rather than silently
                    // truncating a historical analysis.
                    Some(Err(e)) => panic!("segment decode failed mid-scan: {e}"),
                    Some(Ok((seq, e))) => {
                        if let Some(to) = facts.to_micros {
                            if e.timestamp.as_micros() >= to {
                                // Sorted: nothing later can match.
                                break None;
                            }
                        }
                        if facts.admits(&e) {
                            break Some((e.timestamp, seq, e));
                        }
                    }
                },
                Source::Col(scan) => match scan.next_match(plan, mode) {
                    None => break None,
                    Some(Err(e)) => panic!("segment decode failed mid-scan: {e}"),
                    Some(Ok((seq, e))) => break Some((e.timestamp, seq, e)),
                },
            }
        };
    }
}

/// Streaming, ordered iterator over a scan's results.
///
/// Owns everything it needs (`Arc` segment handles, a memtable snapshot,
/// its own plan clone with fresh stateful memory), so it is `'static` and
/// can outlive the store lock it was created under.
pub struct ScanIter {
    plan: Plan,
    /// How columnar segments batch-filter for this plan (see [`ColMode`]).
    mode: ColMode,
    sources: Vec<Peeked>,
    /// Results still allowed out under the plan's limit fact (`None` =
    /// unlimited).  Hitting zero drops every remaining source.
    remaining: Option<usize>,
}

impl ScanIter {
    pub(crate) fn new(
        plan: Plan,
        mem: Vec<(u64, SharedEvent)>,
        cursors: Vec<SegmentCursor>,
    ) -> ScanIter {
        // Stateful plans must feed *every* facts-admissible row through
        // the row evaluator in merge order (its per-series memory updates
        // on evaluation, match or not), so their columnar batches filter
        // by facts alone.  Stateless plans batch-filter with the full
        // plan: exactly when every node is column-decidable, as a
        // superset (re-checked post-merge) otherwise.
        let mode = if plan.is_stateful() {
            ColMode::FactsOnly
        } else if plan.batch_definite() {
            ColMode::Exact
        } else {
            ColMode::Superset
        };
        let mut sources = Vec::with_capacity(cursors.len() + 1);
        sources.push(Peeked {
            source: Source::Mem(mem.into_iter()),
            head: None,
            needs_eval: true,
        });
        for cursor in cursors {
            let source = match cursor.segment().col_scan() {
                Some(scan) => Source::Col(Box::new(scan)),
                None => Source::Seg(cursor),
            };
            let needs_eval = !(matches!(source, Source::Col(_)) && mode == ColMode::Exact);
            sources.push(Peeked {
                source,
                head: None,
                needs_eval,
            });
        }
        for s in &mut sources {
            s.advance(&plan, mode);
        }
        sources.retain(|s| s.head.is_some());
        let remaining = plan.limit();
        let mut iter = ScanIter {
            plan,
            mode,
            sources,
            remaining,
        };
        if iter.remaining == Some(0) {
            iter.sources.clear();
        }
        iter
    }
}

impl Iterator for ScanIter {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            // K is the number of live sources (segments + memtable) —
            // small, so a linear min scan beats heap bookkeeping.
            let min = self
                .sources
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| {
                    let (ts, seq, _) = s.head.as_ref().expect("exhausted sources are dropped");
                    (*ts, *seq)
                })
                .map(|(i, _)| i)?;
            let item = self.sources[min].head.take().expect("staged head");
            let needs_eval = self.sources[min].needs_eval;
            self.sources[min].advance(&self.plan, self.mode);
            if self.sources[min].head.is_none() {
                self.sources.swap_remove(min);
            }
            // The full plan runs post-merge so stateful predicates (e.g. an
            // on-change replay query) see the stream in global time order.
            // Rows from an exact columnar batch pass already *are* matches
            // and skip the re-check (their plans are stateless, so no
            // per-series memory is starved by skipping).
            if needs_eval && !self.plan.eval(&item.2) {
                continue;
            }
            if let Some(remaining) = &mut self.remaining {
                *remaining -= 1;
                if *remaining == 0 {
                    // Limit reached: release every segment handle and the
                    // memtable snapshot now; nothing more will be decoded.
                    self.sources.clear();
                    self.remaining = Some(0);
                    return Some(item.2);
                }
            }
            return Some(item.2);
        }
    }
}

impl std::fmt::Debug for ScanIter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanIter")
            .field("facts", self.plan.facts())
            .field("live_sources", &self.sources.len())
            .field("remaining", &self.remaining)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;
    use jamm_ulm::Level;
    use std::sync::Arc;

    fn ev(t: u64, host: &str) -> Event {
        Event::builder("p", host)
            .level(Level::Usage)
            .event_type("X")
            .timestamp(Timestamp::from_secs(t))
            .value(t as f64)
            .build()
    }

    #[test]
    fn merge_interleaves_sources_in_time_order() {
        let seg_a = Arc::new(Segment::build(
            1,
            &[(1, ev(10, "a")), (3, ev(30, "a")), (5, ev(50, "a"))],
        ));
        let seg_b = Arc::new(Segment::build(2, &[(2, ev(20, "b")), (4, ev(40, "b"))]));
        let mem = vec![
            (6u64, std::sync::Arc::new(ev(25, "m"))),
            (7u64, std::sync::Arc::new(ev(60, "m"))),
        ];
        let iter = ScanIter::new(
            TsdbQuery::all().to_plan(),
            mem,
            vec![seg_a.cursor(), seg_b.cursor()],
        );
        let times: Vec<u64> = iter.map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 25, 30, 40, 50, 60]);
    }

    #[test]
    fn same_timestamp_orders_by_sequence() {
        let seg = Arc::new(Segment::build(1, &[(5, ev(10, "a"))]));
        let mem = vec![
            (2u64, std::sync::Arc::new(ev(10, "m"))),
            (9u64, std::sync::Arc::new(ev(10, "m"))),
        ];
        let iter = ScanIter::new(TsdbQuery::all().to_plan(), mem, vec![seg.cursor()]);
        let hosts: Vec<String> = iter.map(|e| e.host).collect();
        assert_eq!(hosts, vec!["m", "a", "m"]); // seq 2, 5, 9
    }

    #[test]
    fn filters_and_to_bound_apply_inside_segments() {
        let batch: Vec<(u64, Event)> = (0..20)
            .map(|i| (i, ev(i, if i % 2 == 0 { "even" } else { "odd" })))
            .collect();
        let seg = Arc::new(Segment::build(1, &batch));
        let q = TsdbQuery::all()
            .between(Timestamp::from_secs(4), Timestamp::from_secs(15))
            .host("even");
        let iter = ScanIter::new(q.to_plan(), Vec::new(), vec![seg.cursor()]);
        let times: Vec<u64> = iter.map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, vec![4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn arbitrary_predicates_apply_post_merge() {
        let batch: Vec<(u64, Event)> = (0..20).map(|i| (i, ev(i, "h"))).collect();
        let seg = Arc::new(Segment::build(1, &batch));
        let plan = Predicate::parse("(val>=15)").unwrap().compile();
        let iter = ScanIter::new(plan, Vec::new(), vec![seg.cursor()]);
        let times: Vec<u64> = iter.map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, vec![15, 16, 17, 18, 19]);
    }

    #[test]
    fn limit_stops_the_merge_and_releases_sources() {
        let batch: Vec<(u64, Event)> = (0..100).map(|i| (i, ev(i, "h"))).collect();
        let seg = Arc::new(Segment::build(1, &batch));
        let plan = Predicate::parse("(limit=3)").unwrap().compile();
        let mut iter = ScanIter::new(plan, Vec::new(), vec![seg.cursor()]);
        assert_eq!(iter.next().map(|e| e.timestamp.as_secs()), Some(0));
        assert_eq!(iter.next().map(|e| e.timestamp.as_secs()), Some(1));
        assert_eq!(iter.next().map(|e| e.timestamp.as_secs()), Some(2));
        assert_eq!(iter.sources.len(), 0, "sources dropped at the limit");
        assert_eq!(iter.next(), None);
    }

    #[test]
    fn empty_scan_yields_nothing() {
        let iter = ScanIter::new(TsdbQuery::all().to_plan(), Vec::new(), Vec::new());
        assert_eq!(iter.count(), 0);
    }
}
