//! The append-only write-ahead log.
//!
//! Every event is appended here before it enters the memtable, so a crash
//! loses nothing that was acknowledged: on reopen the log is replayed into
//! a fresh memtable.  When the memtable seals into a segment (which is
//! fsynced first) the log is reset, keeping it proportional to the
//! memtable, not the store.
//!
//! Record layout — one record per event, back to back:
//!
//! ```text
//! u64  sequence number (little-endian)
//! ...  ULM binary frame (jamm_ulm::binary, self-delimiting)
//! u64  FNV-1a of the sequence word + frame (little-endian)
//! ```
//!
//! Replay is tolerant of a torn tail: the first truncated or
//! checksum-mismatched record ends the replay, and the log is truncated
//! back to the last good record so the torn bytes can never corrupt later
//! appends.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use jamm_ulm::{binary, Event};

use crate::codec::fnv64;
use crate::{Result, TsdbError};

/// Name of the write-ahead log file inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes currently in the log (tracked to avoid a metadata syscall per
    /// append).
    len: u64,
    sync: bool,
}

impl Wal {
    /// Open (creating if absent) the log inside `dir`.  Existing contents
    /// are preserved; call [`Wal::replay`] first to recover them.
    pub fn open(dir: &Path, sync: bool) -> Result<Wal> {
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(TsdbError::from)?;
        let len = file.metadata().map_err(TsdbError::from)?.len();
        Ok(Wal {
            file,
            path,
            len,
            sync,
        })
    }

    /// Append one event record.
    pub fn append(&mut self, seq: u64, event: &Event) -> Result<()> {
        let mut record = Vec::with_capacity(event.approx_size() + 24);
        record.extend_from_slice(&seq.to_le_bytes());
        binary::encode_into(&mut record, event);
        let sum = fnv64(&record);
        record.extend_from_slice(&sum.to_le_bytes());
        self.write_record_bytes(&record)
    }

    /// Append a batch of event records with a single write.  Generic over
    /// `Borrow<Event>` so both owned batches and the archiver's shared
    /// (`Arc<Event>`) batches encode without copying an event first.
    pub fn append_batch<B: std::borrow::Borrow<Event>>(
        &mut self,
        first_seq: u64,
        events: &[B],
    ) -> Result<()> {
        let mut buf =
            Vec::with_capacity(events.iter().map(|e| e.borrow().approx_size() + 24).sum());
        for (i, event) in events.iter().enumerate() {
            let start = buf.len();
            buf.extend_from_slice(&(first_seq + i as u64).to_le_bytes());
            binary::encode_into(&mut buf, event.borrow());
            let sum = fnv64(&buf[start..]);
            buf.extend_from_slice(&sum.to_le_bytes());
        }
        self.write_record_bytes(&buf)
    }

    /// Write fully-formed record bytes.  Any failure — a partial write
    /// (e.g. ENOSPC midway) or a failed fsync — rolls the file back to the
    /// last record boundary, so an erroring append leaves no trace: torn
    /// bytes can never sit between acknowledged records, and a caller
    /// retrying the same batch (the `try_append_batch` contract) cannot
    /// duplicate records.
    fn write_record_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let rollback = |file: &mut File, len: u64, e: std::io::Error| {
            let _ = file.set_len(len);
            let _ = file.seek(SeekFrom::End(0));
            TsdbError::from(e)
        };
        if let Err(e) = self.file.write_all(bytes) {
            return Err(rollback(&mut self.file, self.len, e));
        }
        if self.sync {
            if let Err(e) = self.file.sync_data() {
                return Err(rollback(&mut self.file, self.len, e));
            }
        }
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Atomically replace the log's contents with the given records: the
    /// new log is written to a temporary file, synced, and renamed over
    /// the old one, so a crash leaves either the old or the new log —
    /// never a mix.  Used by retention cuts.
    pub fn rewrite<B: std::borrow::Borrow<Event>>(&mut self, records: &[(u64, B)]) -> Result<()> {
        let tmp = self.path.with_extension("log.tmp");
        let mut buf = Vec::new();
        for (seq, event) in records {
            let start = buf.len();
            buf.extend_from_slice(&seq.to_le_bytes());
            binary::encode_into(&mut buf, event.borrow());
            let sum = fnv64(&buf[start..]);
            buf.extend_from_slice(&sum.to_le_bytes());
        }
        {
            let mut f = std::fs::File::create(&tmp).map_err(TsdbError::from)?;
            f.write_all(&buf).map_err(TsdbError::from)?;
            f.sync_all().map_err(TsdbError::from)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(TsdbError::from)?;
        // Reopen the append handle on the new inode.
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(TsdbError::from)?;
        self.len = buf.len() as u64;
        Ok(())
    }

    /// Drop every record (the memtable just sealed into a durable segment).
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0).map_err(TsdbError::from)?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(TsdbError::from)?;
        self.len = 0;
        Ok(())
    }

    /// Bytes currently in the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every intact record from the log in `dir`.  Returns the
    /// recovered `(sequence, event)` pairs and the number of bytes that
    /// were discarded as a torn/corrupt tail (0 for a clean log); the file
    /// is truncated back to its intact prefix.  A missing log file is an
    /// empty recovery, not an error.
    pub fn replay(dir: &Path) -> Result<(Vec<(u64, Event)>, u64)> {
        let path = dir.join(WAL_FILE);
        let mut buf = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf).map_err(TsdbError::from)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(TsdbError::from(e)),
        }
        let mut out = Vec::new();
        let mut good = 0usize;
        while good < buf.len() {
            match parse_record(&buf[good..]) {
                Some((seq, event, consumed)) => {
                    out.push((seq, event));
                    good += consumed;
                }
                None => break,
            }
        }
        let torn = (buf.len() - good) as u64;
        if torn > 0 {
            // Drop the torn tail so future appends start on a record
            // boundary.
            let f = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(TsdbError::from)?;
            f.set_len(good as u64).map_err(TsdbError::from)?;
        }
        Ok((out, torn))
    }
}

/// Parse one record from the front of `buf`; `None` if it is truncated or
/// fails its checksum.
fn parse_record(buf: &[u8]) -> Option<(u64, Event, usize)> {
    if buf.len() < 8 + 4 + 8 {
        return None;
    }
    let seq = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
    let (event, frame_len) = binary::decode(&buf[8..]).ok()?;
    let body_end = 8 + frame_len;
    if buf.len() < body_end + 8 {
        return None;
    }
    let stored = u64::from_le_bytes(buf[body_end..body_end + 8].try_into().expect("8 bytes"));
    if fnv64(&buf[..body_end]) != stored {
        return None;
    }
    Some((seq, event, body_end + 8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;
    use jamm_ulm::{Level, Timestamp};

    fn ev(t: u64) -> Event {
        Event::builder("p", "h")
            .level(Level::Usage)
            .event_type("X")
            .timestamp(Timestamp::from_secs(t))
            .value(t as f64)
            .build()
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = TempDir::new("wal-round-trip");
        let mut wal = Wal::open(dir.path(), false).unwrap();
        for i in 0..25u64 {
            wal.append(i, &ev(i)).unwrap();
        }
        drop(wal); // no graceful close needed
        let (recovered, torn) = Wal::replay(dir.path()).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(recovered.len(), 25);
        assert_eq!(recovered[7].0, 7);
        assert_eq!(recovered[7].1, ev(7));
    }

    #[test]
    fn batch_append_matches_singles() {
        let dir = TempDir::new("wal-batch");
        let events: Vec<Event> = (0..10).map(ev).collect();
        let mut wal = Wal::open(dir.path(), false).unwrap();
        wal.append_batch(100, &events).unwrap();
        let (recovered, _) = Wal::replay(dir.path()).unwrap();
        assert_eq!(recovered.len(), 10);
        assert_eq!(recovered[0].0, 100);
        assert_eq!(recovered[9].0, 109);
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let dir = TempDir::new("wal-torn");
        let mut wal = Wal::open(dir.path(), false).unwrap();
        for i in 0..5u64 {
            wal.append(i, &ev(i)).unwrap();
        }
        let path = wal.path().to_path_buf();
        drop(wal);
        // Simulate a crash mid-write: append half a record of garbage.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[1, 2, 3, 4, 5, 6, 7]).unwrap();
        drop(f);
        let (recovered, torn) = Wal::replay(dir.path()).unwrap();
        assert_eq!(recovered.len(), 5);
        assert_eq!(torn, 7);
        // The tail is gone: appending and replaying again is clean.
        let mut wal = Wal::open(dir.path(), false).unwrap();
        wal.append(5, &ev(5)).unwrap();
        drop(wal);
        let (recovered, torn) = Wal::replay(dir.path()).unwrap();
        assert_eq!((recovered.len(), torn), (6, 0));
    }

    #[test]
    fn corrupted_record_stops_replay() {
        let dir = TempDir::new("wal-corrupt");
        let mut wal = Wal::open(dir.path(), false).unwrap();
        for i in 0..3u64 {
            wal.append(i, &ev(i)).unwrap();
        }
        let path = wal.path().to_path_buf();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let record = bytes.len() / 3;
        bytes[record + 12] ^= 0xFF; // flip a byte inside record 2
        std::fs::write(&path, &bytes).unwrap();
        let (recovered, torn) = Wal::replay(dir.path()).unwrap();
        assert_eq!(recovered.len(), 1, "replay stops at the corrupt record");
        assert!(torn > 0);
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = TempDir::new("wal-reset");
        let mut wal = Wal::open(dir.path(), false).unwrap();
        wal.append(1, &ev(1)).unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.append(2, &ev(2)).unwrap();
        drop(wal);
        let (recovered, _) = Wal::replay(dir.path()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, 2);
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let dir = TempDir::new("wal-rewrite");
        let mut wal = Wal::open(dir.path(), false).unwrap();
        for i in 0..10u64 {
            wal.append(i, &ev(i)).unwrap();
        }
        let survivors: Vec<(u64, Event)> = (5..10u64).map(|i| (i, ev(i))).collect();
        wal.rewrite(&survivors).unwrap();
        // The handle keeps working on the new inode.
        wal.append(10, &ev(10)).unwrap();
        drop(wal);
        let (recovered, torn) = Wal::replay(dir.path()).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(
            recovered.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![5, 6, 7, 8, 9, 10]
        );
        assert!(!dir.path().join("wal.log.tmp").exists());
    }

    #[test]
    fn missing_log_replays_empty() {
        let dir = TempDir::new("wal-missing");
        let (recovered, torn) = Wal::replay(dir.path()).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(torn, 0);
    }
}
