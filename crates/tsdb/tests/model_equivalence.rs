//! Property tests: under random interleavings of inserts, seals,
//! compactions and retention cuts, the engine's query results must be
//! byte-identical to a naive in-memory model — and for persistent stores,
//! must survive an abrupt kill (drop without shutdown) and reopen.

use jamm_core::check::{forall, Gen};
use jamm_tsdb::test_util::TempDir;
use jamm_tsdb::{Tsdb, TsdbOptions, TsdbQuery};
use jamm_ulm::{Event, Level, Timestamp, Value};

const HOSTS: [&str; 3] = ["dpss1.lbl.gov", "mems.cairn.net", "portnoy.lbl.gov"];
const TYPES: [&str; 3] = ["CPU_TOTAL", "TCPD_RETRANSMITS", "MEM_FREE"];

/// The naive reference: a growing list of `(insertion sequence, event)`.
#[derive(Default)]
struct Model {
    events: Vec<(u64, Event)>,
    next_seq: u64,
}

impl Model {
    fn insert(&mut self, event: Event) {
        self.next_seq += 1;
        self.events.push((self.next_seq, event));
    }

    fn retain(&mut self, cutoff: Timestamp) {
        self.events.retain(|(_, e)| e.timestamp >= cutoff);
    }

    fn query(&self, q: &TsdbQuery) -> Vec<Event> {
        let mut hits: Vec<(u64, Event)> = self
            .events
            .iter()
            .filter(|(_, e)| naive_matches(q, e))
            .cloned()
            .collect();
        hits.sort_by_key(|(seq, e)| (e.timestamp, *seq));
        hits.into_iter().map(|(_, e)| e).collect()
    }
}

/// The naive matcher the engine's plan-driven scan must agree with — the
/// pre-query-plane `TsdbQuery::matches` semantics, kept here as the
/// independent oracle.
fn naive_matches(q: &TsdbQuery, event: &Event) -> bool {
    if let Some(from) = q.from {
        if event.timestamp < from {
            return false;
        }
    }
    if let Some(to) = q.to {
        if event.timestamp >= to {
            return false;
        }
    }
    if let Some(host) = &q.host {
        if &event.host != host {
            return false;
        }
    }
    if let Some(ty) = &q.event_type {
        if &event.event_type != ty {
            return false;
        }
    }
    true
}

fn random_event(g: &mut Gen) -> Event {
    let t = Timestamp::from_micros(g.u64(120) * 500_000); // 0..60s, 0.5s grid
    let mut b = Event::builder("sensor", g.choice(&HOSTS))
        .level(if g.bool(0.1) {
            Level::Warning
        } else {
            Level::Usage
        })
        .event_type(g.choice(&TYPES))
        .timestamp(t)
        .value(g.f64_in(0.0, 100.0));
    if g.bool(0.3) {
        b = b.field("NOTE", Value::Str(g.printable_string(12)));
    }
    if g.bool(0.3) {
        b = b.field("DELTA", g.any_i64() % 1_000);
    }
    b.build()
}

fn random_query(g: &mut Gen) -> TsdbQuery {
    let mut q = TsdbQuery::all();
    if g.bool(0.7) {
        let from = g.u64(120) * 500_000;
        let to = from + g.u64(60_000_000);
        q = q.between(Timestamp::from_micros(from), Timestamp::from_micros(to));
    }
    if g.bool(0.4) {
        q = q.host(g.choice(&HOSTS));
    }
    if g.bool(0.4) {
        q = q.event_type(g.choice(&TYPES));
    }
    q
}

/// Drive one random schedule of operations against both the engine and the
/// model, checking equivalence after every few steps.
fn drive(g: &mut Gen, db: &Tsdb, model: &mut Model) {
    let steps = g.usize_in(20, 120);
    for _ in 0..steps {
        match g.u64(100) {
            // Mostly inserts, batched or single.
            0..=69 => {
                if g.bool(0.5) {
                    let n = g.usize_in(1, 8);
                    let batch: Vec<Event> = (0..n).map(|_| random_event(g)).collect();
                    for e in &batch {
                        model.insert(e.clone());
                    }
                    db.append_batch(batch).unwrap();
                } else {
                    let e = random_event(g);
                    model.insert(e.clone());
                    db.append(e).unwrap();
                }
            }
            70..=79 => {
                db.seal().unwrap();
            }
            80..=89 => {
                db.compact().unwrap();
            }
            _ => {
                let cutoff = Timestamp::from_micros(g.u64(120) * 500_000);
                model.retain(cutoff);
                db.retain(cutoff).unwrap();
            }
        }
    }
    assert_eq!(db.len(), model.events.len(), "store/model cardinality");
    for _ in 0..4 {
        let q = random_query(g);
        let got: Vec<Event> = db.scan(&q).collect();
        let want = model.query(&q);
        assert_eq!(got, want, "scan mismatch for {q:?}");
    }
    let c = db.catalog();
    assert_eq!(c.event_count, model.events.len());
}

#[test]
fn in_memory_store_matches_naive_model() {
    forall("tsdb ≡ model (in-memory)", 40, |g| {
        // Small memtable so schedules cross the seal boundary constantly.
        let db = Tsdb::in_memory_with(TsdbOptions {
            memtable_max_events: g.usize_in(2, 16),
            small_segment_events: g.usize_in(2, 32),
            sync_wal: false,
        });
        let mut model = Model::default();
        drive(g, &db, &mut model);
    });
}

#[test]
fn persistent_store_matches_model_and_survives_kill() {
    forall("tsdb ≡ model (persistent, kill + recover)", 12, |g| {
        let dir = TempDir::new("prop-kill-recover");
        let opts = TsdbOptions {
            memtable_max_events: g.usize_in(2, 16),
            small_segment_events: g.usize_in(2, 32),
            sync_wal: false,
        };
        let mut model = Model::default();
        {
            let db = Tsdb::open_with(dir.path(), opts.clone()).unwrap();
            drive(g, &db, &mut model);
            // Kill: drop without seal/flush — unsealed events exist only in
            // the WAL now.
        }
        let db = Tsdb::open_with(dir.path(), opts).unwrap();
        assert_eq!(db.len(), model.events.len(), "recovery cardinality");
        let got: Vec<Event> = db.scan(&TsdbQuery::all()).collect();
        assert_eq!(got, model.query(&TsdbQuery::all()), "recovery contents");
        // The reopened store keeps working: another schedule on top.
        drive(g, &db, &mut model);
    });
}
