//! Run a declarative scenario file and print the analyser's report.
//!
//! ```sh
//! cargo run --example scenario_run -- crates/netsim/scenarios/slow_consumer.scn
//! ```
//!
//! The spec format, fault vocabulary and assertion API are documented in
//! `docs/ARCHITECTURE.md` ("Scenario engine").  The printed report is
//! deterministic for a given spec + seed: running this twice produces
//! byte-identical output, which is exactly what the scenario suite's
//! determinism test asserts.

use jamm_netsim::engine::ScenarioEngine;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: scenario_run <spec.scn>");
        std::process::exit(2);
    });
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("read {path}: {e}");
            std::process::exit(2);
        }
    };
    let engine = match ScenarioEngine::from_text(&text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    let report = engine.run();
    print!("{}", report.render_text());
}
