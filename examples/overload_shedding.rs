//! Delivery QoS under a publish burst: tiering, queue budgets, and
//! priority-aware shedding.
//!
//! Builds a two-consumer deployment with a QoS plane on the gateway and
//! drives a burst through it.  The `ops` collector drains every round;
//! `trend` never polls, so the tier classifier walks it fast ->
//! lagging -> probation, its queue budget shrinks along the way, and
//! once aggregate queue pressure crosses the overload threshold the
//! gateway declares overload and sheds probation-tier deliveries
//! pre-queue.  Protected `*_AVG_*` summary events bypass both gates and
//! still reach the stalled consumer.  At the end the example prints the
//! per-tier shed/delivered table an operator would read off the metrics
//! exposition.
//!
//! ```text
//! cargo run --release --example overload_shedding
//! ```

use jamm::jamm_gateway::{OverloadPolicy, QosConfig, Tier};
use jamm::JammBuilder;
use jamm_ulm::{Event, Level};

fn main() {
    // Overload thresholds tuned to this deployment: two 4096-slot
    // subscriptions, one of which stops draining.  The lagging/probation
    // queue budgets (50% / 25% of capacity) cap the stalled queue, so
    // aggregate pressure plateaus around 0.25 — the enter threshold must
    // sit below that plateau for the overload machine to declare.
    let qos = QosConfig {
        overload: OverloadPolicy {
            enter: 0.10,
            exit: 0.05,
        },
        retier_every: 256,
        ..QosConfig::default()
    };
    let mut jamm = JammBuilder::new()
        .gateway("gw.lbl.gov")
        .gateway_qos(qos)
        .collector("ops")
        .collector("trend")
        .build()
        .expect("valid deployment");
    jamm.connect_collectors(vec![]);

    let raw = |i: u64| {
        Event::builder("vmstat", "dpss1.lbl.gov")
            .level(Level::Usage)
            .event_type("CPU_TOTAL")
            .value((i % 100) as f64)
            .build()
    };
    // A summary event: `*_AVG_*` series are protected — never shed,
    // never budget-cut — so they reach even a probation subscriber.
    let summary = |i: u64| {
        Event::builder("gw.lbl.gov", "dpss1.lbl.gov")
            .level(Level::Usage)
            .event_type("CPU_TOTAL_AVG_1M")
            .value((i % 100) as f64)
            .build()
    };

    // The burst: 16k raw events plus a summary every 512th, with `ops`
    // polling each round and `trend` never polling.  Re-tier passes run
    // automatically every 256 publishes.
    let ops = jamm
        .collectors
        .iter()
        .position(|c| c.consumer() == "ops")
        .unwrap();
    let mut summaries_sent = 0u64;
    for i in 0..16_384u64 {
        jamm.publish("gw.lbl.gov", &raw(i));
        if i % 512 == 0 {
            jamm.publish("gw.lbl.gov", &summary(i));
            summaries_sent += 1;
        }
        if i % 512 == 511 {
            jamm.collectors[ops].poll();
        }
    }
    jamm.collectors[ops].poll();

    let gw = &jamm.gateways[0];
    let snap = gw.qos_snapshot().expect("qos plane attached");
    println!(
        "after the burst: overload level = {}, pressure = {:.3}, {} re-tier passes\n",
        snap.level, snap.pressure, snap.retiers
    );

    println!("per-subscription tiers:");
    println!(
        "  {:<10} {:<10} {:>6} {:>8} {:>10} {:>9}",
        "consumer", "tier", "score", "queued", "delivered", "dropped"
    );
    let deliveries = gw.delivery_report();
    for row in gw.tier_report() {
        let d = deliveries.iter().find(|d| d.id == row.id);
        println!(
            "  {:<10} {:<10} {:>6.2} {:>8} {:>10} {:>9}",
            row.consumer,
            row.tier.as_str(),
            row.score,
            row.queue_len,
            d.map_or(0, |d| d.delivered),
            d.map_or(0, |d| d.dropped),
        );
    }

    println!("\nper-tier drop attribution:");
    println!("  {:<10} {:>12} {:>14}", "tier", "shed", "budget drops");
    for tier in Tier::ALL {
        println!(
            "  {:<10} {:>12} {:>14}",
            tier.as_str(),
            snap.shed[tier as usize],
            snap.budget_drops[tier as usize],
        );
    }

    // The protected summary stream survived: drain the stalled consumer
    // once and count what the gates let through.
    let trend = jamm
        .collectors
        .iter()
        .position(|c| c.consumer() == "trend")
        .unwrap();
    jamm.collectors[trend].poll();
    let got = jamm.collectors[trend]
        .events()
        .iter()
        .filter(|e| e.event_type.contains("_AVG_"))
        .count() as u64;
    println!(
        "\nprotected summaries: {got}/{summaries_sent} reached the probation consumer \
         through budget and shed"
    );

    // The same counters an operator would scrape.
    println!("\nmetrics exposition (excerpt):");
    for line in jamm.render_metrics().lines().filter(|l| {
        l.starts_with("jamm_gateway_overload_")
            || l.starts_with("jamm_gateway_shed_total")
            || l.starts_with("jamm_gateway_budget_drops_total")
            || l.starts_with("jamm_gateway_tier_subscriptions")
    }) {
        println!("  {line}");
    }
}
