//! The MATISSE wide-area demonstration (paper §6), end to end.
//!
//! Reproduces the paper's case study: MEMS video frames stored on a
//! four-server DPSS at LBNL are pulled across the Supernet WAN by a compute
//! cluster head node, JAMM monitors every component, and the NetLogger
//! analysis of the collected events shows the receiving-host problem —
//! bursty frame delivery whose gaps line up with TCP retransmissions and
//! high system CPU on the receiver.  The run is then repeated with a single
//! DPSS server (the paper's work-around) to show throughput recovering.
//!
//! ```text
//! cargo run --release --example matisse_demo
//! ```

use jamm::deployment::{DeploymentConfig, JammDeployment};
use jamm_netlogger::analysis::{correlate_gaps, delivery_gaps};
use jamm_ulm::keys;

fn run_configuration(dpss_servers: usize, seconds: f64) -> JammDeployment {
    let mut config = DeploymentConfig::matisse_wan(dpss_servers);
    config.matisse.seed = 2000;
    let mut jamm = JammDeployment::matisse(config);
    jamm.run_secs(seconds);
    jamm
}

fn report(label: &str, jamm: &JammDeployment, seconds: f64) {
    let player = &jamm.scenario.player;
    let series = player.frame_rate_series((seconds * 1e6) as u64, 1_000_000);
    let rates: Vec<f64> = series.iter().map(|&(_, fps)| fps).collect();
    let min_fps = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_fps = rates.iter().cloned().fold(0.0, f64::max);

    println!("== {label} ==");
    println!(
        "  aggregate DPSS throughput : {:>6.1} Mbit/s",
        jamm.scenario.aggregate_mbps()
    );
    println!(
        "  frames displayed          : {:>6}  (mean {:.1} frames/s, range {:.0}-{:.0})",
        player.frames_displayed(),
        player.mean_frame_rate((seconds * 1e6) as u64),
        min_fps,
        max_fps
    );
    println!(
        "  TCP retransmissions       : {:>6}",
        jamm.scenario.client_retransmits()
    );

    // The Figure 7 analysis: do delivery gaps line up with retransmissions?
    let log = jamm.merged_log();
    let gaps = delivery_gaps(&log, keys::matisse::END_READ_FRAME, 700_000);
    let corr = correlate_gaps(&log, &gaps, keys::tcp::RETRANSMITS, 500_000);
    println!(
        "  delivery gaps > 0.7 s     : {:>6}  ({:.0}% contain a retransmission burst)",
        corr.gaps,
        corr.gap_hit_rate() * 100.0
    );
    println!();
}

fn main() {
    let seconds = 30.0;
    println!("MATISSE over Supernet (WAN), 4 DPSS servers vs 1 DPSS server\n");

    let four = run_configuration(4, seconds);
    report(
        "4 DPSS servers (4 parallel sockets into the receiver)",
        &four,
        seconds,
    );

    let one = run_configuration(1, seconds);
    report("1 DPSS server (the paper's work-around)", &one, seconds);

    println!("== Figure 7 (ASCII rendering of the nlv chart, 4-server run) ==\n");
    print!("{}", four.figure7_chart().render_ascii(100));

    println!("\npaper observation: four sockets collapse WAN throughput (~30 vs ~140 Mbit/s),");
    println!("and the gaps in frame delivery coincide with TCP retransmission bursts on the");
    println!("receiving host — both reproduced above.");
}
