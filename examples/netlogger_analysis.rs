//! Using the NetLogger toolkit directly (paper §4).
//!
//! Instruments a toy client/server exchange with the NetLogger API, merges
//! the two hosts' logs, builds lifelines, and shows what clock skew does to
//! the analysis — the reason §4.3 insists on NTP-synchronised clocks.
//!
//! ```text
//! cargo run --release --example netlogger_analysis
//! ```

use jamm_netlogger::analysis::mean_stage_durations;
use jamm_netlogger::api::{NetLogger, Sink};
use jamm_netlogger::clock::{skew_events, HostClock, NtpSimulation};
use jamm_netlogger::merge::{inversion_count, merge_logs};
use jamm_netlogger::nlv::{lifelines, NlvChart};
use jamm_ulm::{Timestamp, Value};

const STAGES: [&str; 4] = ["REQ_SENT", "REQ_RECV", "RESP_SENT", "RESP_RECV"];

/// Instrument 20 request/response exchanges between a client and a server,
/// with the server taking 3 ms to "process" each request and the network
/// adding 1 ms each way.
fn instrumented_run() -> (Vec<jamm_ulm::Event>, Vec<jamm_ulm::Event>) {
    let mut client = NetLogger::with_host("client_app", "viz.cairn.net");
    let mut server = NetLogger::with_host("data_server", "dpss1.lbl.gov");
    client.open(Sink::Memory).unwrap();
    server.open(Sink::Memory).unwrap();

    let t0 = Timestamp::parse_ulm_date("20000515120000.000000").unwrap();
    for i in 0..20u64 {
        let oid = format!("req-{i}");
        let send = t0.add_micros(i * 10_000);
        let recv = send.add_micros(1_000);
        let reply = recv.add_micros(3_000);
        let done = reply.add_micros(1_000);
        client.set_clock_override(Some(send));
        client
            .write_for_object("REQ_SENT", &oid, &[("SIZE", Value::UInt(1_024))])
            .unwrap();
        server.set_clock_override(Some(recv));
        server.write_for_object("REQ_RECV", &oid, &[]).unwrap();
        server.set_clock_override(Some(reply));
        server.write_for_object("RESP_SENT", &oid, &[]).unwrap();
        client.set_clock_override(Some(done));
        client
            .write_for_object("RESP_RECV", &oid, &[("SIZE", Value::UInt(65_536))])
            .unwrap();
    }
    (client.drain_buffer(), server.drain_buffer())
}

fn main() {
    // 1. Instrument and merge.
    let (client_log, server_log) = instrumented_run();
    let merged = merge_logs(&[client_log.clone(), server_log.clone()]);
    println!(
        "merged {} events from 2 hosts; time inversions: {}",
        merged.len(),
        inversion_count(&merged)
    );

    // 2. Lifeline analysis: where does the time go?
    let lines = lifelines(&merged, &STAGES);
    println!(
        "\nper-stage mean latency over {} request lifelines:",
        lines.len()
    );
    for (from, to, mean_us, n) in mean_stage_durations(&lines) {
        println!("  {from:>10} -> {to:<10}  {mean_us:>8.0} us   ({n} samples)");
    }

    // 3. The nlv chart.
    let chart = NlvChart::build(&merged, &STAGES, &[], &[]);
    println!("\nnlv lifeline chart (time left to right):\n");
    print!("{}", chart.render_ascii(90));

    // 4. What happens without clock synchronisation (§4.3)?
    let skewed_server = skew_events(&server_log, "dpss1.lbl.gov", &HostClock::new(-8_000.0, 0.0));
    let skewed = merge_logs(&[client_log, skewed_server]);
    let skewed_lines = lifelines(&skewed, &STAGES);
    let bad_stages = mean_stage_durations(&skewed_lines);
    println!("\nwith the server clock 8 ms slow, the same analysis reports:");
    for (from, to, mean_us, _) in bad_stages {
        println!("  {from:>10} -> {to:<10}  {mean_us:>8.0} us");
    }
    println!("  (stages appear to run backwards / take negative time — useless for analysis)");

    // 5. How well can NTP do?  The paper: ~0.25 ms with GPS on the subnet,
    //    within 1 ms is good enough.
    let mut ntp = NtpSimulation::new(1);
    ntp.add_host("gps-subnet-host", 120_000.0, 40.0, 0);
    ntp.add_host("three-hops-away", 120_000.0, 40.0, 3);
    ntp.add_host("distant-site", 120_000.0, 40.0, 6);
    ntp.run(60);
    println!("\nresidual clock error after an hour of NTP (paper: ~0.25 ms with GPS on subnet):");
    for (host, us) in ntp.residual_offsets() {
        println!("  {host:<18} {:>7.3} ms", us / 1_000.0);
    }
}
