//! The monitor monitored: self-lifelines, unified metrics and automated
//! bottleneck diagnosis.
//!
//! Builds a small self-monitored deployment with two consumers, makes one
//! of them deliberately slow to drain its queue, and lets JAMM's own
//! observability plane find it: the sampled `_jamm` lifelines are drained,
//! `jamm_netlogger::analysis::diagnose` names the slow hop and the
//! offending consumer, and the metrics exposition shows the same counters
//! an operator would scrape.
//!
//! ```text
//! cargo run --release --example self_monitoring
//! ```

use jamm::JammBuilder;
use jamm_netlogger::analysis::diagnose;
use jamm_ulm::{Event, Level};

fn main() {
    let mut jamm = JammBuilder::new()
        .gateway("gw.lbl.gov")
        .collector("nlv-analyst")
        .collector("mems.cairn.net")
        .archiver("archiver", "archive=demo,o=grid")
        .self_monitor(1) // trace every publish; production would use 64
        .build()
        .expect("valid deployment");
    jamm.connect_collectors(vec![]);
    jamm.connect_archiver(vec![]);

    // Two rounds of sensor traffic.  The analyst drains as soon as events
    // arrive; "mems.cairn.net" sits on its full queue for ~60 ms first —
    // the injected bottleneck the diagnosis must localize.
    for _ in 0..2 {
        for i in 0..4u64 {
            let e = Event::builder("vmstat", "dpss1.lbl.gov")
                .level(Level::Usage)
                .event_type("CPU_TOTAL")
                .value((i % 100) as f64)
                .build();
            jamm.publish("gw.lbl.gov", &e);
        }
        let fast = jamm
            .collectors
            .iter()
            .position(|c| c.consumer() == "nlv-analyst")
            .unwrap();
        let slow = jamm
            .collectors
            .iter()
            .position(|c| c.consumer() == "mems.cairn.net")
            .unwrap();
        jamm.collectors[fast].poll();
        if let Some(archiver) = &mut jamm.archiver {
            archiver.poll();
        }
        std::thread::sleep(std::time::Duration::from_millis(60));
        jamm.collectors[slow].poll();
    }

    // The self-lifelines went through an internal `_jamm` gateway like any
    // other monitoring data; drain and diagnose them.
    jamm.drain_self_events();
    let lifelines = jamm.self_events();
    println!(
        "drained {} trace points from the _jamm gateway\n",
        lifelines.len()
    );

    let report = diagnose(lifelines.iter().map(|e| e.as_ref()));
    print!("{}", report.render_text());

    let bottleneck = report.bottleneck().expect("hops observed");
    println!(
        "\n=> the pipeline's slowest hop is {} -> {} at {} \
         (mean {:.1} ms over {} lifelines)",
        bottleneck.from,
        bottleneck.to,
        bottleneck.target,
        bottleneck.mean_us / 1_000.0,
        bottleneck.count
    );

    // The same counters back admin_stats and the text exposition — one
    // source of truth, three views.
    println!("\nmetrics exposition (excerpt):");
    for line in jamm
        .render_metrics()
        .lines()
        .filter(|l| l.starts_with("jamm_gateway_") || l.starts_with("jamm_trace_"))
    {
        println!("  {line}");
    }
}
