//! Quickstart: monitor a small Grid application with JAMM.
//!
//! Builds the LAN variant of the MATISSE scenario (two DPSS storage servers
//! streaming video frames to a client), deploys JAMM over it — sensor
//! managers on every host, site event gateways, the LDAP-like sensor
//! directory, an event collector and an archiver — runs it for a few
//! simulated seconds, and prints what the monitoring system saw.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use jamm::deployment::{DeploymentConfig, JammDeployment};
use jamm_directory::{Dn, Filter, Scope};

fn main() {
    // 1. Configure the deployment: LAN topology, two DPSS servers, archive on.
    let mut config = DeploymentConfig::matisse_lan(2);
    config.matisse.player.frame_bytes = 800_000;
    config.matisse.seed = 42;
    let mut jamm = JammDeployment::matisse(config);

    // 2. Run ten simulated seconds of the monitored application.
    println!("running 10 simulated seconds of the monitored application...\n");
    jamm.run_secs(10.0);

    // 3. What did the directory end up knowing about?
    println!("== sensor directory ==");
    let sensors = jamm
        .directory
        .search(
            &Dn::parse("o=grid").unwrap(),
            Scope::Subtree,
            &Filter::parse("(objectclass=sensor)").unwrap(),
        )
        .expect("directory reachable");
    for entry in &sensors.entries {
        println!(
            "  {:<55} status={:<8} gateway={}",
            entry.dn.to_string(),
            entry.get("status").unwrap_or("?"),
            entry.get("gateway").unwrap_or("?"),
        );
    }

    // 4. Application progress and monitoring volume.
    println!("\n== summary ==");
    println!(
        "  frames displayed ............ {}",
        jamm.scenario.player.frames_displayed()
    );
    println!(
        "  application events .......... {}",
        jamm.application_event_count()
    );
    println!(
        "  sensor events published ..... {}",
        jamm.events_published()
    );
    println!(
        "  events delivered to consumers {}",
        jamm.events_delivered()
    );
    println!("  events archived ............. {}", jamm.archive.len());
    println!(
        "  DPSS -> client throughput ... {:.1} Mbit/s",
        jamm.scenario.aggregate_mbps()
    );
    println!(
        "  TCP retransmissions ......... {}",
        jamm.scenario.client_retransmits()
    );

    // 5. A peek at the merged NetLogger log (what nlv would consume).
    let log = jamm.merged_log();
    println!("\n== first 5 lines of the merged ULM log ==");
    for event in log.iter().take(5) {
        println!("  {}", jamm_ulm::text::encode(event));
    }
    println!("  ... ({} events total)", log.len());
}
