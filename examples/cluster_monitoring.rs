//! Monitoring a compute farm with JAMM (paper §1.1).
//!
//! "it could be used in large compute farms or clusters that require
//! constant monitoring to ensure all nodes are running correctly."
//!
//! Builds a 32-node monitored cluster, injects worker-process failures, and
//! shows the process-monitor consumer restarting them and the fault being
//! visible in the event archive.  Also demonstrates the fan-out argument of
//! §2.3: adding consumers multiplies delivered copies at the gateway, not
//! work on the monitored nodes.
//!
//! ```text
//! cargo run --release --example cluster_monitoring
//! ```

use jamm::cluster::ClusterDeployment;
use jamm_gateway::EventFilter;
use jamm_ulm::Level;

fn main() {
    let nodes = 32;
    let mut cluster = ClusterDeployment::new(nodes, 2, 7);
    // An operations dashboard and a capacity planner both watch the farm;
    // the planner only wants warnings and errors.
    cluster.attach_consumers(1, vec![]);
    cluster.attach_consumers(1, vec![EventFilter::MinLevel(Level::Warning)]);

    println!("monitoring a {nodes}-node farm with 2 gateways and 3 consumers\n");
    cluster.run_secs(5.0);

    println!("after 5 s of normal operation:");
    println!(
        "  sensor entries in directory : {}",
        cluster.directory.entry_count()
    );
    println!(
        "  events published            : {}",
        cluster.events_published()
    );
    println!(
        "  event copies delivered      : {}",
        cluster.events_delivered()
    );

    // Fault injection: three workers die.
    for node in [3, 11, 27] {
        cluster.kill_worker(node);
    }
    println!("\nkilled the worker process on nodes 3, 11 and 27...");
    cluster.run_secs(5.0);

    let recovered: Vec<usize> = [3usize, 11, 27]
        .into_iter()
        .filter(|&n| cluster.worker_alive(n))
        .collect();
    println!(
        "  recovery actions taken      : {}",
        cluster.process_monitor.history().len()
    );
    println!("  workers alive again         : {recovered:?}");
    println!(
        "  whole-farm outage alerts    : {}",
        cluster.overview.alerts().len()
    );

    println!("\nper-consumer delivery counts (gateway fan-out, §2.3):");
    for gw in &cluster.gateways {
        for report in gw.delivery_report() {
            println!(
                "  gateway {:<24} subscription {:<2} {:<12} {:>8} events {:>10} bytes {:>6} dropped",
                gw.name(),
                report.id,
                report.consumer,
                report.delivered,
                report.bytes,
                report.dropped
            );
        }
    }
}
